//! Error surface of the serving runtime.

use std::fmt;

/// Why a request (or the service itself) failed.
///
/// `Clone` so a batch-wide failure can be fanned out to every request in
/// the batch; inference errors are carried as rendered strings for the
/// same reason (and because they cross the wire protocol as text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded submission queue was full; backpressure, try again.
    /// Carries the configured capacity.
    QueueFull(usize),
    /// The service is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The request's deadline expired before a worker picked it up; the
    /// batcher shed it without running inference.
    DeadlineExceeded,
    /// Cost-based admission control refused a guaranteed request: the
    /// oracle's pessimistic completion estimate exceeds the latency
    /// budget, so queueing it would only manufacture a deadline miss.
    /// Carries the rendered estimate-vs-budget explanation.
    AdmissionRejected(String),
    /// A queued best-effort request was shed to make room for guaranteed
    /// work under overload (distinct from [`ServeError::DeadlineExceeded`]
    /// — its deadline had not expired).
    ShedOverload,
    /// The input tensor does not match the plan's expected item shape.
    BadInput(String),
    /// The execution plan failed (rendered `TensorError`).
    Inference(String),
    /// The service configuration was rejected by the `V0xx` lint gate;
    /// carries the joined denial diagnostics.
    Config(String),
    /// The response channel was severed before a result arrived — the
    /// service dropped mid-flight (only reachable if the runtime is torn
    /// down non-gracefully).
    Disconnected,
    /// The request named a model this server does not route.
    UnknownModel(String),
    /// A registry operation failed (rendered `RegistryError`), or a
    /// registry-only operation was sent to a single-model server.
    Registry(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull(cap) => {
                write!(f, "submission queue full (capacity {cap})")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before dispatch")
            }
            ServeError::AdmissionRejected(reason) => {
                write!(f, "admission refused: {reason}")
            }
            ServeError::ShedOverload => {
                write!(f, "best-effort request shed under overload")
            }
            ServeError::BadInput(reason) => write!(f, "bad input: {reason}"),
            ServeError::Inference(reason) => write!(f, "inference failed: {reason}"),
            ServeError::Config(reason) => {
                write!(f, "service configuration rejected: {reason}")
            }
            ServeError::Disconnected => {
                write!(f, "response channel severed before completion")
            }
            ServeError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            ServeError::Registry(reason) => write!(f, "registry operation failed: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}
