//! Multi-model routing and zero-downtime hot-swap over a
//! [`ModelRegistry`].
//!
//! The router keeps one live [`Service`] per model — its *endpoint* —
//! pinned to the registry's active revision and sharing one
//! [`WorkspacePool`] across all models. Publish and rollback replace an
//! endpoint without dropping requests:
//!
//! ```text
//! publish(m, r2):
//!   1. compile r2's plan (lazy, LRU-cached in the registry)
//!   2. spawn the NEW service — old endpoint still serving
//!   3. registry.publish(m, r2), swap the endpoint map entry atomically
//!   4. hand the OLD service to a reaper thread; its Drop drains every
//!      in-flight request exactly once, off the admin path
//! ```
//!
//! A submission that loses the race — it drew the old endpoint just as
//! shutdown closed its intake — observes [`ServeError::ShuttingDown`] and
//! retries against the freshly swapped endpoint, so no request is lost
//! across a swap. Every response is attributable to exactly one revision:
//! the revision of the endpoint that accepted the submission (the value
//! [`Router::submit`] returns).

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::net::Dispatch;
use crate::service::{CompletionNotify, Service, Ticket};
use mlcnn_core::WorkspacePool;
use mlcnn_registry::{ModelRegistry, RegistryError};
use mlcnn_sched::SloSpec;
use mlcnn_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// How many times a submission re-reads the endpoint map when it keeps
/// drawing endpoints that are already shutting down. Each retry observes
/// a *newer* endpoint, so in practice one retry suffices; the bound only
/// guards against a pathological publish storm.
const SWAP_RETRIES: usize = 8;

/// One model's live serving endpoint.
struct Endpoint {
    revision: u64,
    svc: Arc<Service>,
}

/// Multi-model serving front over a [`ModelRegistry`]. See the
/// [module docs](self).
pub struct Router {
    registry: Arc<ModelRegistry>,
    cfg: ServeConfig,
    /// Per-model SLO overriding `cfg.slo`; survives publish/rollback so a
    /// hot-swapped endpoint keeps its model's serving class.
    slos: BTreeMap<String, SloSpec>,
    pool: Arc<WorkspacePool>,
    endpoints: RwLock<BTreeMap<String, Arc<Endpoint>>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("registry", &self.registry.root())
            .field("models", &self.models())
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Stand up one endpoint per registry model, each at its active
    /// revision and the precision its artifact recorded, all sharing one
    /// workspace pool. `cfg` supplies the batching/worker/queue knobs;
    /// its precision field is overridden per model.
    pub fn new(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> Result<Router, ServeError> {
        Router::with_slos(registry, cfg, BTreeMap::new())
    }

    /// [`Router::new`] with a per-model SLO map. A model present in
    /// `slos` serves under that spec (overriding `cfg.slo`) on its
    /// initial endpoint *and* on every endpoint spawned by a later
    /// publish or rollback — the class is a property of the model, not of
    /// the revision currently serving it.
    pub fn with_slos(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
        slos: BTreeMap<String, SloSpec>,
    ) -> Result<Router, ServeError> {
        let pool = Arc::new(WorkspacePool::new());
        let mut endpoints = BTreeMap::new();
        for model in registry.models() {
            let slo = slos.get(&model).copied();
            let endpoint = spawn_endpoint(&registry, &model, None, &cfg, slo, &pool)?;
            endpoints.insert(model, Arc::new(endpoint));
        }
        Ok(Router {
            registry,
            cfg,
            slos,
            pool,
            endpoints: RwLock::new(endpoints),
        })
    }

    /// The SLO spec `model` serves under, whether from the per-model map
    /// or the config default. `None` = classless FIFO.
    pub fn slo_of(&self, model: &str) -> Option<SloSpec> {
        self.slos.get(model).copied().or(self.cfg.slo)
    }

    /// The registry backing this router.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Routable model names, sorted.
    pub fn models(&self) -> Vec<String> {
        self.read_endpoints().keys().cloned().collect()
    }

    /// The revision currently serving `model`.
    pub fn active_revision(&self, model: &str) -> Result<u64, ServeError> {
        self.read_endpoints()
            .get(model)
            .map(|e| e.revision)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))
    }

    /// Submit one input item to `model`, returning the revision that
    /// accepted it (the attribution for its eventual response) and the
    /// ticket. Retries transparently when a hot-swap closes the drawn
    /// endpoint mid-submission, so swaps never lose requests.
    pub fn submit(&self, model: &str, input: Tensor<f32>) -> Result<(u64, Ticket), ServeError> {
        let mut last = ServeError::ShuttingDown;
        for _ in 0..SWAP_RETRIES {
            let endpoint = self
                .read_endpoints()
                .get(model)
                .cloned()
                .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
            match endpoint.svc.submit(input.clone()) {
                Ok(ticket) => return Ok((endpoint.revision, ticket)),
                // the endpoint we drew was swapped out and is draining;
                // the map already holds (or is about to hold) its
                // replacement — re-read and retry
                Err(ServeError::ShuttingDown) => {
                    last = ServeError::ShuttingDown;
                    std::thread::yield_now();
                }
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// [`Router::submit`] with a completion hook (see
    /// [`Service::submit_notified`]): same hot-swap retry discipline,
    /// same revision attribution, but `notify.completed(tag)` fires once
    /// the ticket holds the response — the form the event-driven
    /// transport uses.
    pub fn submit_notified(
        &self,
        model: &str,
        input: Tensor<f32>,
        notify: Arc<dyn CompletionNotify>,
        tag: u64,
    ) -> Result<(u64, Ticket), ServeError> {
        let mut last = ServeError::ShuttingDown;
        for _ in 0..SWAP_RETRIES {
            let endpoint = self
                .read_endpoints()
                .get(model)
                .cloned()
                .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
            match endpoint
                .svc
                .submit_notified(input.clone(), Arc::clone(&notify), tag)
            {
                Ok(ticket) => return Ok((endpoint.revision, ticket)),
                Err(ServeError::ShuttingDown) => {
                    last = ServeError::ShuttingDown;
                    std::thread::yield_now();
                }
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// [`Router::submit`] under an explicit SLO spec, optionally with a
    /// completion hook: same hot-swap retry discipline, same revision
    /// attribution. Guaranteed requests are admission-checked by the
    /// drawn endpoint's cost oracle.
    pub fn submit_slo(
        &self,
        model: &str,
        input: Tensor<f32>,
        spec: SloSpec,
        done: Option<(Arc<dyn CompletionNotify>, u64)>,
    ) -> Result<(u64, Ticket), ServeError> {
        let mut last = ServeError::ShuttingDown;
        for _ in 0..SWAP_RETRIES {
            let endpoint = self
                .read_endpoints()
                .get(model)
                .cloned()
                .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
            let done = done
                .as_ref()
                .map(|(notify, tag)| (Arc::clone(notify), *tag));
            match endpoint.svc.submit_slo(input.clone(), spec, done) {
                Ok(ticket) => return Ok((endpoint.revision, ticket)),
                Err(ServeError::ShuttingDown) => {
                    last = ServeError::ShuttingDown;
                    std::thread::yield_now();
                }
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// Submit and block for the response.
    pub fn infer(&self, model: &str, input: Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
        self.submit(model, input)?.1.wait()
    }

    /// Make `revision` the active revision of `model`, hot-swapping its
    /// endpoint with zero downtime. Returns `(active, previous)`. No-op
    /// (and no swap) when `revision` is already active.
    pub fn publish(&self, model: &str, revision: u64) -> Result<(u64, u64), ServeError> {
        // Validate against the *registry* first so an unknown revision
        // fails before any service is spawned.
        let current = self.registry.active(model).map_err(registry_err)?;
        if current == revision && self.active_revision(model)? == revision {
            return Ok((revision, revision));
        }
        let endpoint = spawn_endpoint(
            &self.registry,
            model,
            Some(revision),
            &self.cfg,
            self.slos.get(model).copied(),
            &self.pool,
        )?;
        let (active, previous) = self
            .registry
            .publish(model, revision)
            .map_err(registry_err)?;
        self.swap_endpoint(model, endpoint);
        Ok((active, previous))
    }

    /// Revert `model` to the revision active before the last publish,
    /// hot-swapping its endpoint. Returns `(active, previous)`.
    pub fn rollback(&self, model: &str) -> Result<(u64, u64), ServeError> {
        // Rollback mutates registry history, so consult it first; spawn
        // the target endpoint before the old one is retired.
        let (active, previous) = self.registry.rollback(model).map_err(registry_err)?;
        let endpoint = match spawn_endpoint(
            &self.registry,
            model,
            Some(active),
            &self.cfg,
            self.slos.get(model).copied(),
            &self.pool,
        ) {
            Ok(e) => e,
            Err(e) => {
                // Put the history back so a failed rollback is a no-op.
                let _ = self.registry.publish(model, previous);
                return Err(e);
            }
        };
        self.swap_endpoint(model, endpoint);
        Ok((active, previous))
    }

    /// Metrics of every endpoint as one JSON object:
    /// `{"models":{"<name>":{"revision":N,"metrics":{...}}}}`.
    pub fn metrics_json(&self) -> String {
        let endpoints = self.read_endpoints();
        let mut out = String::from("{\"models\":{");
        for (i, (name, e)) in endpoints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"revision\":{},\"metrics\":{}}}",
                e.revision,
                e.svc.metrics().to_json()
            ));
        }
        out.push_str("}}");
        out
    }

    fn read_endpoints(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<Endpoint>>> {
        self.endpoints.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Atomically replace `model`'s endpoint and retire the old one on a
    /// detached reaper thread: its `Drop` drains all in-flight requests
    /// (each resolves exactly once) without blocking the admin caller.
    fn swap_endpoint(&self, model: &str, endpoint: Endpoint) {
        let old = {
            let mut endpoints = self.endpoints.write().unwrap_or_else(|e| e.into_inner());
            endpoints.insert(model.to_string(), Arc::new(endpoint))
        };
        if let Some(old) = old {
            let spawned = std::thread::Builder::new()
                .name("mlcnn-endpoint-reaper".into())
                .spawn(move || drop(old));
            if let Err(e) = spawned {
                // Could not detach: drain inline rather than leak the
                // old service's threads.
                eprintln!("mlcnn-serve: reaper spawn failed ({e}); draining inline");
            }
        }
    }
}

impl Dispatch for Router {
    fn submit(&self, model: &str, input: Tensor<f32>) -> Result<Ticket, ServeError> {
        if model.is_empty() {
            // the empty name is only unambiguous on a single-model registry
            let endpoints = self.read_endpoints();
            if endpoints.len() == 1 {
                let only = endpoints.keys().next().cloned().expect("len checked");
                drop(endpoints);
                return Router::submit(self, &only, input).map(|(_, t)| t);
            }
            return Err(ServeError::UnknownModel(
                "(empty — this server routes multiple models; name one)".into(),
            ));
        }
        Router::submit(self, model, input).map(|(_, t)| t)
    }

    fn submit_notified(
        &self,
        model: &str,
        input: Tensor<f32>,
        notify: Arc<dyn CompletionNotify>,
        tag: u64,
    ) -> Result<Ticket, ServeError> {
        if model.is_empty() {
            // the empty name is only unambiguous on a single-model registry
            let endpoints = self.read_endpoints();
            if endpoints.len() == 1 {
                let only = endpoints.keys().next().cloned().expect("len checked");
                drop(endpoints);
                return Router::submit_notified(self, &only, input, notify, tag).map(|(_, t)| t);
            }
            return Err(ServeError::UnknownModel(
                "(empty — this server routes multiple models; name one)".into(),
            ));
        }
        Router::submit_notified(self, model, input, notify, tag).map(|(_, t)| t)
    }

    fn submit_slo(
        &self,
        model: &str,
        input: Tensor<f32>,
        spec: SloSpec,
        done: Option<(Arc<dyn CompletionNotify>, u64)>,
    ) -> Result<Ticket, ServeError> {
        if model.is_empty() {
            // the empty name is only unambiguous on a single-model registry
            let endpoints = self.read_endpoints();
            if endpoints.len() == 1 {
                let only = endpoints.keys().next().cloned().expect("len checked");
                drop(endpoints);
                return Router::submit_slo(self, &only, input, spec, done).map(|(_, t)| t);
            }
            return Err(ServeError::UnknownModel(
                "(empty — this server routes multiple models; name one)".into(),
            ));
        }
        Router::submit_slo(self, model, input, spec, done).map(|(_, t)| t)
    }

    fn metrics_json(&self) -> String {
        Router::metrics_json(self)
    }

    fn publish(&self, model: &str, revision: u64) -> Result<(u64, u64), ServeError> {
        Router::publish(self, model, revision)
    }

    fn rollback(&self, model: &str) -> Result<(u64, u64), ServeError> {
        Router::rollback(self, model)
    }
}

fn registry_err(e: RegistryError) -> ServeError {
    match e {
        RegistryError::UnknownModel(name) => ServeError::UnknownModel(name),
        other => ServeError::Registry(other.to_string()),
    }
}

/// Compile `(model, revision)` through the registry's plan cache and
/// spawn a service for it at the artifact's recorded default precision,
/// over the router's shared pool. `slo`, when set, overrides the config
/// default so the endpoint serves under its model's class.
fn spawn_endpoint(
    registry: &ModelRegistry,
    model: &str,
    revision: Option<u64>,
    cfg: &ServeConfig,
    slo: Option<SloSpec>,
    pool: &Arc<WorkspacePool>,
) -> Result<Endpoint, ServeError> {
    let rev = match revision {
        Some(r) => r,
        None => registry.active(model).map_err(registry_err)?,
    };
    let precision = registry
        .default_precision(model, rev)
        .map_err(registry_err)?;
    let (rev, plan) = registry
        .plan(model, Some(rev), precision)
        .map_err(registry_err)?;
    let cfg = ServeConfig {
        precision,
        slo: slo.or(cfg.slo),
        ..cfg.clone()
    };
    let svc = Service::spawn_with_pool(plan, cfg, Arc::clone(pool))?;
    Ok(Endpoint {
        revision: rev,
        svc: Arc::new(svc),
    })
}
