//! The serving model zoo: every plan-compilable zoo model with its
//! canonical input geometry, plus helpers to compile a served
//! [`ExecutionPlan`] deterministically from a name.
//!
//! `mlcnn-served` and `mlcnn-loadgen` both resolve models through this
//! table, so the two ends of a benchmark are guaranteed to agree on
//! weights (same seed), geometry, and precision.

use mlcnn_core::reorder::reorder_activation_pool;
use mlcnn_core::{ExecutionPlan, PlanOptions};
use mlcnn_nn::spec::build_network;
use mlcnn_nn::{zoo, LayerSpec};
use mlcnn_quant::Precision;
use mlcnn_registry::Artifact;
use mlcnn_tensor::Shape4;

use crate::error::ServeError;

/// Seed used to initialize weights for every served model, so separately
/// started servers and reference plans agree bit-for-bit.
pub const SERVE_SEED: u64 = 2022;

/// One entry of the serving zoo: a plan-compilable layer pipeline plus
/// its single-item input geometry.
#[derive(Debug, Clone)]
pub struct ServeModel {
    /// Stable lookup name (`mlcnn-served --model <name>`).
    pub name: &'static str,
    /// The layer pipeline.
    pub specs: Vec<LayerSpec>,
    /// Single-item input shape (`n` = 1).
    pub input: Shape4,
}

impl ServeModel {
    /// Compile the model into an [`ExecutionPlan`] at `precision`, with
    /// weights drawn deterministically from [`SERVE_SEED`].
    pub fn compile(&self, precision: Precision) -> Result<ExecutionPlan, ServeError> {
        let mut net = build_network(&self.specs, self.input, SERVE_SEED)
            .map_err(|e| ServeError::Config(format!("{}: {e}", self.name)))?;
        let params = net.export_params();
        ExecutionPlan::compile(
            &self.specs,
            &params,
            self.input,
            PlanOptions::default().with_precision(precision),
        )
        .map_err(|e| ServeError::Config(format!("{}: {e}", self.name)))
    }

    /// Pack the model into a registry [`Artifact`] at `revision`, with
    /// weights drawn deterministically from `seed`. The same `(model,
    /// revision, precision, seed)` always yields byte-identical encoded
    /// artifacts — the property the pack-determinism test pins — so
    /// separately packed registries agree on layer content hashes too.
    pub fn artifact(
        &self,
        revision: u64,
        precision: Precision,
        seed: u64,
    ) -> Result<Artifact, ServeError> {
        let mut net = build_network(&self.specs, self.input, seed)
            .map_err(|e| ServeError::Config(format!("{}: {e}", self.name)))?;
        Ok(Artifact {
            model: self.name.to_string(),
            revision,
            specs: self.specs.clone(),
            input: self.input,
            precision,
            params: net.export_params(),
        })
    }
}

/// Every model the serving layer knows. `vgg-nano` and `mlp-mini` are
/// deliberately tiny — per-item inference is microseconds or less, which
/// makes them the models where dispatch amortization from batching is
/// most visible (`mlp-mini`, two matmuls, is the dispatch-bound extreme).
pub fn serving_zoo() -> Vec<ServeModel> {
    let cifar = Shape4::new(1, 3, 32, 32);
    vec![
        ServeModel {
            name: "lenet5",
            specs: zoo::lenet5_spec(10),
            input: cifar,
        },
        ServeModel {
            name: "lenet5-reordered",
            specs: reorder_activation_pool(&zoo::lenet5_spec(10)).specs,
            input: cifar,
        },
        ServeModel {
            name: "vgg-mini",
            specs: zoo::vgg_mini_spec(3, 10),
            input: cifar,
        },
        ServeModel {
            name: "vgg-nano",
            specs: zoo::vgg_mini_spec(1, 10),
            input: Shape4::new(1, 3, 8, 8),
        },
        ServeModel {
            name: "mlp-mini",
            specs: zoo::mlp_mini_spec(32, 10),
            input: Shape4::new(1, 3, 8, 8),
        },
    ]
}

/// Look a model up by name.
pub fn find_model(name: &str) -> Result<ServeModel, ServeError> {
    let zoo = serving_zoo();
    let names: Vec<&str> = zoo.iter().map(|m| m.name).collect();
    zoo.into_iter().find(|m| m.name == name).ok_or_else(|| {
        ServeError::Config(format!(
            "unknown model '{name}' (serving zoo: {})",
            names.join(", ")
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_zoo_model_compiles_at_every_precision() {
        for model in serving_zoo() {
            for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
                let plan = model.compile(precision).unwrap();
                assert_eq!(plan.precision(), precision, "{}", model.name);
            }
        }
    }

    #[test]
    fn lookup_finds_known_and_rejects_unknown() {
        assert_eq!(find_model("vgg-nano").unwrap().name, "vgg-nano");
        let err = find_model("resnet18").unwrap_err();
        assert!(err.to_string().contains("serving zoo"));
    }
}
