//! `mlcnn-loadgen` — load generator and correctness harness for the
//! micro-batching service.
//!
//! ```text
//! mlcnn-loadgen [--out PATH] [--smoke] [--requests N] [--clients N]
//!               [--rate-rps N] [--remote HOST:PORT --model NAME --precision P]
//! ```
//!
//! Default (in-process) run, written to `BENCH_serve.json`:
//!
//! 1. **Parity sweep** — every serving-zoo model at FP32/FP16/INT8:
//!    service responses must be *bitwise* identical to
//!    `ExecutionPlan::forward` on the same single item.
//! 2. **Closed loop** — concurrent clients each awaiting their response
//!    before sending the next; reports throughput and latency quantiles.
//! 3. **Batching speedup** — pipelined load through a `max_batch = 8`
//!    service vs an otherwise-identical `max_batch = 1` service on the
//!    dispatch-bound `vgg-nano` model.
//! 4. **Open loop** — fixed-rate arrivals with a deadline, reporting how
//!    much load the deadline sheds.
//!
//! `--smoke` shrinks the run and asserts the CI gate: parity everywhere,
//! every service drains fully (zero dropped in-flight), and closed-loop
//! p99 stays under 250 ms.
//!
//! `--remote` instead drives a running `mlcnn-served` over TCP with
//! closed-loop clients, checking parity against a locally compiled
//! reference plan (same seed).

use std::collections::VecDeque;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlcnn_core::{ExecutionPlan, Workspace};
use mlcnn_quant::Precision;
use mlcnn_serve::{find_model, serving_zoo, Client, MetricsSnapshot, ServeConfig, Service};
use mlcnn_tensor::{init, Shape4, Tensor};

const ALL_PRECISIONS: [Precision; 3] = [Precision::Fp32, Precision::Fp16, Precision::Int8];
/// Smoke-mode latency gate: generous enough for a loaded single-core CI
/// runner, tight enough to catch a stalled batcher (whose symptom is
/// requests waiting forever).
const SMOKE_P99_MICROS: u64 = 250_000;

struct Args {
    out: String,
    smoke: bool,
    requests: usize,
    clients: usize,
    rate_rps: u64,
    remote: Option<String>,
    model: String,
    precision: Precision,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_serve.json".into(),
        smoke: false,
        requests: 2000,
        clients: 8,
        rate_rps: 2000,
        remote: None,
        model: "lenet5".into(),
        precision: Precision::Fp32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = val("--out")?,
            "--smoke" => args.smoke = true,
            "--requests" => {
                args.requests = val("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--clients" => {
                args.clients = val("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--rate-rps" => {
                args.rate_rps = val("--rate-rps")?
                    .parse()
                    .map_err(|e| format!("--rate-rps: {e}"))?
            }
            "--remote" => args.remote = Some(val("--remote")?),
            "--model" => args.model = val("--model")?,
            "--precision" => args.precision = val("--precision")?.parse()?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(600);
    }
    Ok(args)
}

fn item_input(shape: Shape4, seed: u64) -> Tensor<f32> {
    init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(seed),
    )
}

/// Bitwise parity: a handful of service responses vs the plan's own
/// single-item `forward` on a fresh workspace.
fn parity_check(svc: &Service, plan: &ExecutionPlan, shape: Shape4) -> Result<(), String> {
    let mut ws = Workspace::for_plan(plan, 1);
    for seed in 0..6u64 {
        let x = item_input(shape, 1000 + seed);
        let got = svc.infer(x.clone()).map_err(|e| e.to_string())?;
        let want = plan.forward(&x, &mut ws).map_err(|e| e.to_string())?;
        if got != want {
            return Err(format!("response diverges from plan.forward (seed {seed})"));
        }
    }
    Ok(())
}

/// Closed loop: `clients` threads, each awaiting its response before the
/// next request. Returns achieved requests-per-second.
fn closed_loop(svc: &Service, shape: Shape4, clients: usize, total: usize) -> f64 {
    let per_client = total.div_ceil(clients.max(1));
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let x = item_input(shape, 7 + c as u64);
                for _ in 0..per_client {
                    svc.infer(x.clone()).expect("closed-loop infer");
                }
            });
        }
    });
    (per_client * clients) as f64 / start.elapsed().as_secs_f64()
}

/// Pipelined load: one submitter alternates between bursts of submissions
/// and draining the accumulated tickets. The service sees a standing
/// queue (so the batcher can actually coalesce), while most `wait` calls
/// find their response already buffered — the client is measuring the
/// service's dispatch cost, not its own context switches. This is the
/// fixture for the batched-vs-batch=1 comparison — identical client
/// behaviour on both sides, only the service policy differs.
fn pipelined_loop(svc: &Service, shape: Shape4, total: usize) -> f64 {
    let burst = 256usize;
    let x = item_input(shape, 100);
    let mut inflight: VecDeque<mlcnn_serve::Ticket> = VecDeque::new();
    let mut submitted = 0usize;
    let start = Instant::now();
    while submitted < total {
        let goal = (submitted + burst).min(total);
        while submitted < goal {
            match svc.submit(x.clone()) {
                Ok(t) => {
                    inflight.push_back(t);
                    submitted += 1;
                }
                // backpressure: drain one and retry
                Err(mlcnn_serve::ServeError::QueueFull(_)) => {
                    if let Some(t) = inflight.pop_front() {
                        t.wait().expect("pipelined wait");
                    }
                }
                Err(e) => panic!("pipelined submit: {e}"),
            }
        }
        while inflight.len() > burst / 2 {
            inflight
                .pop_front()
                .unwrap()
                .wait()
                .expect("pipelined wait");
        }
    }
    for t in inflight {
        t.wait().expect("pipelined drain");
    }
    total as f64 / start.elapsed().as_secs_f64()
}

/// Open loop: submit at a fixed rate with a per-request deadline; expired
/// requests are shed by the service and surface in the snapshot.
fn open_loop(svc: &Service, shape: Shape4, rate_rps: u64, total: usize) -> (f64, u64) {
    let interval = Duration::from_nanos(1_000_000_000 / rate_rps.max(1));
    let deadline = Duration::from_millis(100);
    let (tx, rx) = std::sync::mpsc::channel();
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            // collector: resolve tickets off the pacer's critical path
            let mut shed = 0u64;
            while let Ok(ticket) = rx.recv() {
                let t: mlcnn_serve::Ticket = ticket;
                if matches!(t.wait(), Err(mlcnn_serve::ServeError::DeadlineExceeded)) {
                    shed += 1;
                }
            }
            shed
        });
        let x = item_input(shape, 55);
        for i in 0..total {
            let due = start + interval * i as u32;
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            // a full queue under overload is a rejection, counted by metrics
            if let Ok(t) = svc.submit_with_deadline(x.clone(), Some(deadline)) {
                let _ = tx.send(t);
            }
        }
        drop(tx);
    });
    let elapsed = start.elapsed().as_secs_f64();
    let snap = svc.metrics();
    (total as f64 / elapsed, snap.shed_expired)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".into()
    }
}

fn snapshot_fragment(s: &MetricsSnapshot) -> String {
    format!(
        concat!(
            "\"p50_micros\": {}, \"p90_micros\": {}, \"p99_micros\": {}, ",
            "\"mean_batch_size\": {:.3}, \"batches\": {}, \"shed_expired\": {}, ",
            "\"rejected_full\": {}, \"fully_drained\": {}"
        ),
        s.p50_micros,
        s.p90_micros,
        s.p99_micros,
        s.mean_batch_size,
        s.batches,
        s.shed_expired,
        s.rejected_full,
        s.fully_drained(),
    )
}

fn run_remote(args: &Args) -> Result<String, String> {
    let addr = args.remote.clone().expect("remote mode");
    let model = find_model(&args.model).map_err(|e| e.to_string())?;
    let plan = model.compile(args.precision).map_err(|e| e.to_string())?;
    let mut ws = Workspace::for_plan(&plan, 1);

    // parity against the local reference plan (same seed as the server)
    let mut probe = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    for seed in 0..4u64 {
        let x = item_input(model.input, 2000 + seed);
        let got = probe
            .infer_model(&args.model, x.clone())
            .map_err(|e| e.to_string())?;
        let want = plan.forward(&x, &mut ws).map_err(|e| e.to_string())?;
        if got != want {
            return Err(format!(
                "remote response diverges from reference (seed {seed})"
            ));
        }
    }

    let per_client = args.requests.div_ceil(args.clients.max(1));
    let start = Instant::now();
    std::thread::scope(|s| -> Result<(), String> {
        let mut handles = Vec::new();
        for c in 0..args.clients {
            let addr = addr.clone();
            let input = model.input;
            let name = args.model.clone();
            handles.push(s.spawn(move || -> Result<(), String> {
                let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                let x = item_input(input, 300 + c as u64);
                for _ in 0..per_client {
                    client
                        .infer_model(&name, x.clone())
                        .map_err(|e| e.to_string())?;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| "client thread panicked".to_string())??;
        }
        Ok(())
    })?;
    let rps = (per_client * args.clients) as f64 / start.elapsed().as_secs_f64();
    let metrics = probe.metrics_json().map_err(|e| e.to_string())?;
    Ok(format!(
        "{{\n  \"mode\": \"remote\",\n  \"addr\": \"{addr}\",\n  \"model\": \"{}\",\n  \"precision\": \"{}\",\n  \"parity\": true,\n  \"requests\": {},\n  \"clients\": {},\n  \"throughput_rps\": {},\n  \"server_metrics\": {metrics}\n}}\n",
        model.name,
        args.precision,
        per_client * args.clients,
        args.clients,
        fmt_f64(rps),
    ))
}

fn run_local(args: &Args) -> Result<String, String> {
    let mut model_sections = Vec::new();
    let mut all_drained = true;
    let mut worst_p99: u64 = 0;

    // 1 + 2: parity sweep and closed-loop load, zoo × precisions
    for model in serving_zoo() {
        for precision in ALL_PRECISIONS {
            let plan = Arc::new(model.compile(precision).map_err(|e| e.to_string())?);
            let cfg = ServeConfig::default()
                .with_precision(precision)
                .with_batching(8, Duration::from_micros(200));
            let svc = Service::spawn(Arc::clone(&plan), cfg).map_err(|e| e.to_string())?;
            parity_check(&svc, &plan, model.input)
                .map_err(|e| format!("{}@{precision}: {e}", model.name))?;
            let rps = closed_loop(&svc, model.input, args.clients, args.requests);
            let snap = svc.shutdown();
            all_drained &= snap.fully_drained();
            worst_p99 = worst_p99.max(snap.p99_micros);
            println!(
                "[loadgen] {}@{precision}: parity ok, closed-loop {:.0} rps, p99 {} µs, mean batch {:.2}",
                model.name, rps, snap.p99_micros, snap.mean_batch_size
            );
            model_sections.push(format!(
                "    {{\"model\": \"{}\", \"precision\": \"{precision}\", \"parity\": true, \"closed_loop_rps\": {}, {}}}",
                model.name,
                fmt_f64(rps),
                snapshot_fragment(&snap)
            ));
        }
    }

    // 3: batching speedup on the dispatch-bound model, identical pipelined
    // client, only (max_batch, max_wait) differs
    let demo = find_model("mlp-mini").map_err(|e| e.to_string())?;
    let plan = Arc::new(demo.compile(Precision::Fp32).map_err(|e| e.to_string())?);
    let speedup_requests = args.requests.max(500) * 8;

    let batched_cfg = ServeConfig::default()
        .with_batching(16, Duration::from_micros(200))
        .with_queue(1024);
    let svc = Service::spawn(Arc::clone(&plan), batched_cfg).map_err(|e| e.to_string())?;
    let batched_rps = pipelined_loop(&svc, demo.input, speedup_requests);
    let batched_snap = svc.shutdown();
    all_drained &= batched_snap.fully_drained();

    let batch1_cfg = ServeConfig::default()
        .with_batching(1, Duration::ZERO)
        .with_queue(1024);
    let svc = Service::spawn(Arc::clone(&plan), batch1_cfg).map_err(|e| e.to_string())?;
    let batch1_rps = pipelined_loop(&svc, demo.input, speedup_requests);
    let batch1_snap = svc.shutdown();
    all_drained &= batch1_snap.fully_drained();

    let speedup = batched_rps / batch1_rps;
    println!(
        "[loadgen] {} batching: {batched_rps:.0} rps (mean batch {:.2}) vs {batch1_rps:.0} rps at batch=1 → {speedup:.2}x",
        demo.name, batched_snap.mean_batch_size
    );

    // 4: open loop at a fixed arrival rate with a deadline
    let open_cfg = ServeConfig::default().with_batching(8, Duration::from_micros(200));
    let svc = Service::spawn(Arc::clone(&plan), open_cfg).map_err(|e| e.to_string())?;
    let (offered_rps, _) = open_loop(&svc, demo.input, args.rate_rps, args.requests);
    let open_snap = svc.shutdown();
    all_drained &= open_snap.fully_drained();
    println!(
        "[loadgen] open loop: offered {offered_rps:.0} rps, shed {} of {} by deadline",
        open_snap.shed_expired, open_snap.submitted
    );

    if args.smoke {
        assert!(all_drained, "smoke: a service dropped in-flight requests");
        assert!(
            worst_p99 < SMOKE_P99_MICROS,
            "smoke: closed-loop p99 {worst_p99} µs breaches the {SMOKE_P99_MICROS} µs gate"
        );
        println!("[loadgen] smoke gate passed (drained everywhere, worst p99 {worst_p99} µs)");
    }

    Ok(format!(
        "{{\n  \"mode\": \"local\",\n  \"threads\": {},\n  \"requests_per_section\": {},\n  \"clients\": {},\n  \"smoke\": {},\n  \"all_fully_drained\": {},\n  \"worst_closed_loop_p99_micros\": {},\n  \"models\": [\n{}\n  ],\n  \"batching_speedup\": {{\n    \"model\": \"{}\", \"precision\": \"{}\", \"requests\": {},\n    \"batched_rps\": {}, \"batched_mean_batch_size\": {:.3},\n    \"batch1_rps\": {}, \"speedup\": {}\n  }},\n  \"open_loop\": {{\n    \"model\": \"{}\", \"offered_rps\": {}, \"deadline_millis\": 100, {}\n  }}\n}}\n",
        rayon::current_num_threads(),
        args.requests,
        args.clients,
        args.smoke,
        all_drained,
        worst_p99,
        model_sections.join(",\n"),
        demo.name,
        Precision::Fp32,
        speedup_requests,
        fmt_f64(batched_rps),
        batched_snap.mean_batch_size,
        fmt_f64(batch1_rps),
        fmt_f64(speedup),
        demo.name,
        fmt_f64(offered_rps),
        snapshot_fragment(&open_snap),
    ))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mlcnn-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.remote.is_some() {
        run_remote(&args)
    } else {
        run_local(&args)
    };
    match result {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, &json) {
                eprintln!("mlcnn-loadgen: write {}: {e}", args.out);
                return ExitCode::FAILURE;
            }
            println!("[loadgen] wrote {}", args.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mlcnn-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
