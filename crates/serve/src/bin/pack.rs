//! `mlcnn-pack` — pack serving-zoo models into versioned `.mlcnn`
//! registry artifacts.
//!
//! ```text
//! mlcnn-pack --out DIR [--model NAME] [--revision N]
//!            [--precision fp32|fp16|int8] [--seed N] [--all]
//! ```
//!
//! Each artifact bundles the model's layer specs, input geometry,
//! default serving precision, and parameter tensors (drawn
//! deterministically from `--seed`, default the fixed serving seed), and
//! is written as `DIR/{model}@{revision}.mlcnn`. After writing, the file
//! is read back through the same strict loader `ModelRegistry::open`
//! uses, so a successful pack is guaranteed to be loadable.
//!
//! Varying `--seed` across revisions of the same model produces
//! distinguishable weights — which is exactly what the hot-swap smoke
//! rehearsal does to tell revisions apart by their outputs.

use std::path::PathBuf;
use std::process::ExitCode;

use mlcnn_quant::Precision;
use mlcnn_registry::Artifact;
use mlcnn_serve::{find_model, serving_zoo, ServeModel, SERVE_SEED};

struct Args {
    out: PathBuf,
    model: Option<String>,
    revision: u64,
    precision: Precision,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = None;
    let mut args = Args {
        out: PathBuf::new(),
        model: None,
        revision: 1,
        precision: Precision::Fp32,
        seed: SERVE_SEED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(val("--out")?)),
            "--model" => args.model = Some(val("--model")?),
            "--all" => args.model = None,
            "--revision" => {
                args.revision = val("--revision")?
                    .parse()
                    .map_err(|e| format!("--revision: {e}"))?
            }
            "--precision" => args.precision = val("--precision")?.parse()?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    args.out = out.ok_or("--out DIR is required")?;
    Ok(args)
}

fn pack_one(model: &ServeModel, args: &Args) -> Result<PathBuf, String> {
    let artifact = model
        .artifact(args.revision, args.precision, args.seed)
        .map_err(|e| e.to_string())?;
    let bytes = artifact
        .encode()
        .map_err(|e| format!("{}: {e}", model.name))?;
    let path = args.out.join(artifact.file_name());
    std::fs::write(&path, &bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
    // Read back through the registry's strict loader: a pack that
    // succeeds is a pack that loads.
    let reread = std::fs::read(&path).map_err(|e| format!("reread {}: {e}", path.display()))?;
    Artifact::load(&reread).map_err(|e| format!("verify {}: {e}", path.display()))?;
    Ok(path)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("create {}: {e}", args.out.display()))?;
    let models = match &args.model {
        Some(name) => vec![find_model(name).map_err(|e| e.to_string())?],
        None => serving_zoo(),
    };
    for model in &models {
        let path = pack_one(model, &args)?;
        println!(
            "mlcnn-pack: {} rev {} @ {:?} (seed {}) -> {}",
            model.name,
            args.revision,
            args.precision,
            args.seed,
            path.display()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlcnn-pack: {e}");
            ExitCode::FAILURE
        }
    }
}
