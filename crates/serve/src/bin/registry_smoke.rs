//! `mlcnn-registry-smoke` — end-to-end rehearsal of a registry hot-swap
//! under live load.
//!
//! ```text
//! mlcnn-registry-smoke [--model NAME] [--clients N] [--requests N]
//!                      [--out BENCH_registry.json]
//! ```
//!
//! The rehearsal, in order:
//!
//! 1. pack two revisions of one zoo model into a scratch registry
//!    directory (different weight seeds, so their outputs are
//!    distinguishable);
//! 2. open the directory with [`ModelRegistry`], front it with a
//!    [`Router`], and serve it over TCP;
//! 3. hammer the server from concurrent clients while the main thread
//!    publishes revision 2 mid-load;
//! 4. assert **zero failed requests** and that every single response is
//!    bitwise attributable to exactly one of the two revisions;
//! 5. roll back to revision 1 and verify responses follow;
//! 6. write the tallies to a benchmark JSON report.
//!
//! Exits non-zero if any request fails, any response matches neither
//! revision, or the swap/rollback don't take effect.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlcnn_core::Workspace;
use mlcnn_nn::spec::build_network;
use mlcnn_quant::Precision;
use mlcnn_registry::{Artifact, ModelRegistry};
use mlcnn_serve::{find_model, serve_listener, Client, Router, ServeConfig};
use mlcnn_tensor::{init, Shape4, Tensor};

const SEED_REV1: u64 = 1001;
const SEED_REV2: u64 = 2002;

struct Args {
    model: String,
    clients: usize,
    requests: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: "mlp-mini".into(),
        clients: 4,
        requests: 200,
        out: PathBuf::from("BENCH_registry.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--model" => args.model = val("--model")?,
            "--clients" => {
                args.clients = val("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                args.requests = val("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--out" => args.out = PathBuf::from(val("--out")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be positive".into());
    }
    Ok(args)
}

/// Pack `model` at `revision` with weights from `seed`.
fn pack(dir: &std::path::Path, model: &str, revision: u64, seed: u64) -> Result<(), String> {
    let zoo = find_model(model).map_err(|e| e.to_string())?;
    let mut net =
        build_network(&zoo.specs, zoo.input, seed).map_err(|e| format!("{model}: {e}"))?;
    let artifact = Artifact {
        model: model.to_string(),
        revision,
        specs: zoo.specs.clone(),
        input: zoo.input,
        precision: Precision::Fp32,
        params: net.export_params(),
    };
    let bytes = artifact.encode().map_err(|e| e.to_string())?;
    std::fs::write(dir.join(artifact.file_name()), bytes).map_err(|e| e.to_string())
}

/// Reference single-item forward for `(model, seed)` on `input`.
fn reference(model: &str, seed: u64, input: &Tensor<f32>) -> Result<Vec<f32>, String> {
    let zoo = find_model(model).map_err(|e| e.to_string())?;
    let mut net =
        build_network(&zoo.specs, zoo.input, seed).map_err(|e| format!("{model}: {e}"))?;
    let params = net.export_params();
    let plan = mlcnn_core::ExecutionPlan::compile(
        &zoo.specs,
        &params,
        zoo.input,
        mlcnn_core::PlanOptions::default().with_precision(Precision::Fp32),
    )
    .map_err(|e| e.to_string())?;
    let mut ws = Workspace::new();
    let out = plan.forward(input, &mut ws).map_err(|e| e.to_string())?;
    Ok(out.as_slice().to_vec())
}

struct Tally {
    ok_rev1: usize,
    ok_rev2: usize,
    failed: usize,
    unattributed: usize,
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let dir = std::env::temp_dir().join(format!("mlcnn-registry-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

    pack(&dir, &args.model, 1, SEED_REV1)?;
    pack(&dir, &args.model, 2, SEED_REV2)?;

    let registry = ModelRegistry::open(&dir).map_err(|e| e.to_string())?;
    let active = registry.active(&args.model).map_err(|e| e.to_string())?;
    // open() activates the highest revision; start from rev 1 so the
    // publish mid-load is a real upgrade.
    assert_eq!(active, 2, "open should activate the highest revision");
    registry
        .publish(&args.model, 1)
        .map_err(|e| e.to_string())?;

    let router = Arc::new(
        Router::new(Arc::new(registry), ServeConfig::default()).map_err(|e| e.to_string())?,
    );
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    {
        let router = Arc::clone(&router);
        std::thread::Builder::new()
            .name("mlcnn-smoke-accept".into())
            .spawn(move || {
                let _ = serve_listener(listener, router);
            })
            .map_err(|e| e.to_string())?;
    }

    let shape = find_model(&args.model).map_err(|e| e.to_string())?.input;
    let input = init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(7),
    );
    let ref1 = reference(&args.model, SEED_REV1, &input)?;
    let ref2 = reference(&args.model, SEED_REV2, &input)?;
    if ref1 == ref2 {
        return Err("revision outputs are indistinguishable; smoke cannot attribute".into());
    }

    let start = Instant::now();
    let swapped = Arc::new(AtomicBool::new(false));
    let per_client = args.requests / args.clients;
    let mut tally = Tally {
        ok_rev1: 0,
        ok_rev2: 0,
        failed: 0,
        unattributed: 0,
    };
    std::thread::scope(|s| -> Result<(), String> {
        let mut handles = Vec::new();
        for _ in 0..args.clients {
            let model = args.model.clone();
            let input = input.clone();
            let (ref1, ref2) = (&ref1, &ref2);
            let swapped = Arc::clone(&swapped);
            handles.push(s.spawn(move || -> Result<Tally, String> {
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let mut t = Tally {
                    ok_rev1: 0,
                    ok_rev2: 0,
                    failed: 0,
                    unattributed: 0,
                };
                for i in 0..per_client {
                    match client.infer_model(&model, input.clone()) {
                        Ok(out) => {
                            let got = out.as_slice();
                            if got == &ref1[..] {
                                t.ok_rev1 += 1;
                            } else if got == &ref2[..] {
                                t.ok_rev2 += 1;
                            } else {
                                t.unattributed += 1;
                            }
                        }
                        Err(_) => t.failed += 1,
                    }
                    // once the swap has landed, responses must be rev2
                    if swapped.load(Ordering::Acquire) && i % 8 == 0 {
                        std::thread::yield_now();
                    }
                }
                Ok(t)
            }));
        }

        // Let traffic establish on rev 1, then hot-swap to rev 2 while
        // the clients keep hammering.
        std::thread::sleep(Duration::from_millis(30));
        let mut admin = Client::connect(addr).map_err(|e| e.to_string())?;
        let (active, previous) = admin.publish(&args.model, 2).map_err(|e| e.to_string())?;
        if (active, previous) != (2, 1) {
            return Err(format!(
                "publish returned ({active}, {previous}), want (2, 1)"
            ));
        }
        swapped.store(true, Ordering::Release);

        for h in handles {
            let t = h
                .join()
                .map_err(|_| "client thread panicked".to_string())??;
            tally.ok_rev1 += t.ok_rev1;
            tally.ok_rev2 += t.ok_rev2;
            tally.failed += t.failed;
            tally.unattributed += t.unattributed;
        }
        Ok(())
    })?;
    let elapsed = start.elapsed();

    // After the load: the active revision must be 2 and fresh responses
    // must match it.
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let post_swap = client
        .infer_model(&args.model, input.clone())
        .map_err(|e| e.to_string())?;
    if post_swap.as_slice() != &ref2[..] {
        return Err("post-swap response does not match revision 2".into());
    }
    let (active, previous) = client.rollback(&args.model).map_err(|e| e.to_string())?;
    if (active, previous) != (1, 2) {
        return Err(format!(
            "rollback returned ({active}, {previous}), want (1, 2)"
        ));
    }
    let post_rollback = client
        .infer_model(&args.model, input.clone())
        .map_err(|e| e.to_string())?;
    if post_rollback.as_slice() != &ref1[..] {
        return Err("post-rollback response does not match revision 1".into());
    }

    let total = tally.ok_rev1 + tally.ok_rev2 + tally.failed + tally.unattributed;
    let report = format!(
        "{{\n  \"model\": \"{}\",\n  \"clients\": {},\n  \"requests\": {},\n  \"rev1_responses\": {},\n  \"rev2_responses\": {},\n  \"failed\": {},\n  \"unattributed\": {},\n  \"swap_under_load\": true,\n  \"rollback_verified\": true,\n  \"elapsed_ms\": {}\n}}\n",
        args.model,
        args.clients,
        total,
        tally.ok_rev1,
        tally.ok_rev2,
        tally.failed,
        tally.unattributed,
        elapsed.as_millis(),
    );
    std::fs::write(&args.out, &report).map_err(|e| format!("write {}: {e}", args.out.display()))?;
    println!(
        "mlcnn-registry-smoke: {} requests — rev1 {}, rev2 {}, failed {}, unattributed {} ({} ms)",
        total,
        tally.ok_rev1,
        tally.ok_rev2,
        tally.failed,
        tally.unattributed,
        elapsed.as_millis()
    );
    let _ = std::fs::remove_dir_all(&dir);

    if tally.failed > 0 {
        return Err(format!("{} requests failed during the swap", tally.failed));
    }
    if tally.unattributed > 0 {
        return Err(format!(
            "{} responses matched neither revision",
            tally.unattributed
        ));
    }
    if tally.ok_rev2 == 0 {
        return Err("no response was served by revision 2; swap never took effect".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlcnn-registry-smoke: {e}");
            ExitCode::FAILURE
        }
    }
}
