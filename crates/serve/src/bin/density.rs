//! `mlcnn-density` — multi-tenant density benchmark for the
//! content-addressed dedup store.
//!
//! ```text
//! mlcnn-density [--model NAME] [--revisions N] [--out BENCH_density.json]
//! ```
//!
//! Packs `--revisions` revisions of one zoo model into a scratch
//! registry, where revision *i* derives copy-on-write from the base by
//! replacing param-bearing layer `i mod P` with that layer's fixed
//! alternate variant — the worst realistic fleet: every revision differs
//! from the base, but the registry as a whole contains only `2 × P`
//! distinct layers. All revisions are then compiled and held live at
//! once, as a single serving node would, and the report compares:
//!
//! - **naive** resident bytes: what N independent plans would hold
//!   (per-plan baked parameters + arena, summed);
//! - **dedup** resident bytes: unique segment bytes actually resident in
//!   the shared store, plus one arena;
//! - **single** footprint: one revision's parameters + arena.
//!
//! The gate is the paper-style density claim: serving every revision
//! must cost at most **2×** the single-revision footprint, because only
//! the unique layers (base + one alternate per layer) are resident.
//! Exits non-zero if the ratio exceeds 2.0, if any revision fails to
//! install or compile, or if any plan fails the verifier.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mlcnn_core::ExecutionPlan;
use mlcnn_quant::Precision;
use mlcnn_registry::{Artifact, ModelRegistry};
use mlcnn_serve::{find_model, SERVE_SEED};
use mlcnn_tensor::Tensor;

struct Args {
    model: String,
    revisions: u64,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: "lenet5".into(),
        revisions: 1000,
        out: PathBuf::from("BENCH_density.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--model" => args.model = val("--model")?,
            "--revisions" => {
                args.revisions = val("--revisions")?
                    .parse()
                    .map_err(|e| format!("--revisions: {e}"))?
            }
            "--out" => args.out = PathBuf::from(val("--out")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.revisions == 0 {
        return Err("--revisions must be at least 1".into());
    }
    Ok(args)
}

/// Deterministic alternate parameters for param-layer `layer`: every
/// revision replacing this layer uses the *same* variant, so the fleet
/// holds exactly one alternate per layer no matter how many revisions
/// reference it.
fn alternate_params(base: &Artifact, layer: usize) -> (Tensor<f32>, Tensor<f32>) {
    let w_shape = base.params[layer * 2].shape();
    let b_shape = base.params[layer * 2 + 1].shape();
    let salt = layer as f32 + 1.0;
    let weight = Tensor::from_fn(w_shape, move |n, c, h, w| {
        let x = (n * 31 + c * 17 + h * 7 + w) % 101;
        (x as f32 - 50.0) / (60.0 * salt)
    });
    let bias = Tensor::from_fn(b_shape, move |_, _, _, w| (w % 11) as f32 / (40.0 * salt));
    (weight, bias)
}

struct Scratch(PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let started = Instant::now();
    let zoo = find_model(&args.model).map_err(|e| e.to_string())?;
    let base = zoo
        .artifact(1, Precision::Fp32, SERVE_SEED)
        .map_err(|e| e.to_string())?;
    let param_layers = base.param_layer_specs().len();
    if param_layers == 0 {
        return Err(format!("{}: no param-bearing layers", args.model));
    }

    let dir = std::env::temp_dir().join(format!("mlcnn-density-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let scratch = Scratch(dir);

    std::fs::write(
        scratch.0.join(base.file_name()),
        base.encode().map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let registry = ModelRegistry::open(&scratch.0).map_err(|e| e.to_string())?;

    // one fixed alternate per layer; revision i (2-based) replaces layer
    // (i - 2) mod P with its layer's alternate
    let alternates: Vec<(Tensor<f32>, Tensor<f32>)> = (0..param_layers)
        .map(|l| alternate_params(&base, l))
        .collect();
    for rev in 2..=args.revisions {
        let layer = ((rev - 2) as usize) % param_layers;
        let (w, b) = alternates[layer].clone();
        let derived = base
            .with_layer_params(rev, layer, w, b)
            .map_err(|e| format!("derive rev {rev}: {e}"))?;
        registry
            .install(&derived)
            .map_err(|e| format!("install rev {rev}: {e}"))?;
    }

    // compile every revision and hold all plans live, as one node
    // serving the whole fleet would
    let mut plans: Vec<Arc<ExecutionPlan>> = Vec::with_capacity(args.revisions as usize);
    let mut naive_param_bytes = 0usize;
    for rev in 1..=args.revisions {
        let (_, plan) = registry
            .plan(&args.model, Some(rev), Precision::Fp32)
            .map_err(|e| format!("compile rev {rev}: {e}"))?;
        plan.verify()
            .map_err(|e| format!("rev {rev} fails plan verification: {e}"))?;
        naive_param_bytes += plan.resident_param_bytes();
        plans.push(plan);
    }

    let arena_bytes = plans[0].arena_bytes(1);
    let single_param_bytes = plans[0].resident_param_bytes();
    let stats = registry.segment_stats();

    // cross-check the store's byte accounting against pointer identity:
    // every live segment bakes one weight and one bias allocation, so the
    // unique Arc addresses across every live plan must be exactly twice
    // the store's live segment count
    let mut addrs: Vec<usize> = plans
        .iter()
        .flat_map(|p| p.param_handles())
        .map(|h| h.addr())
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    if addrs.len() != stats.live * 2 {
        return Err(format!(
            "store reports {} live segments (= {} allocations) but plans hold {} unique allocations",
            stats.live,
            stats.live * 2,
            addrs.len()
        ));
    }

    let single = single_param_bytes + arena_bytes;
    let naive = naive_param_bytes + args.revisions as usize * arena_bytes;
    let dedup = stats.resident_bytes + arena_bytes;
    let ratio = dedup as f64 / single as f64;
    let elapsed = started.elapsed();

    let report = format!(
        "{{\n  \"model\": \"{}\",\n  \"revisions\": {},\n  \"param_layers\": {},\n  \"unique_segments\": {},\n  \"single_resident_bytes\": {},\n  \"naive_resident_bytes\": {},\n  \"dedup_resident_bytes\": {},\n  \"arena_bytes\": {},\n  \"density_ratio\": {:.4},\n  \"ratio_bound\": 2.0,\n  \"segment_hits\": {},\n  \"segment_misses\": {},\n  \"elapsed_ms\": {}\n}}\n",
        args.model,
        args.revisions,
        param_layers,
        stats.live,
        single,
        naive,
        dedup,
        arena_bytes,
        ratio,
        stats.hits,
        stats.misses,
        elapsed.as_millis(),
    );
    std::fs::write(&args.out, &report).map_err(|e| format!("write {}: {e}", args.out.display()))?;
    println!(
        "mlcnn-density: {} revisions of {} — single {} B, naive {} B, dedup {} B ({}x single, {} unique segments, {} ms)",
        args.revisions,
        args.model,
        single,
        naive,
        dedup,
        (ratio * 100.0).round() / 100.0,
        stats.live,
        elapsed.as_millis(),
    );
    if ratio > 2.0 {
        return Err(format!(
            "density gate failed: dedup resident {dedup} B is {ratio:.3}x the single-revision footprint {single} B (bound 2.0)"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlcnn-density: {e}");
            ExitCode::FAILURE
        }
    }
}
