//! `mlcnn-served` — TCP inference server over the micro-batching service.
//!
//! ```text
//! mlcnn-served [--model NAME] [--precision fp32|fp16|int8]
//!              [--addr HOST:PORT] [--workers N] [--max-batch N]
//!              [--max-wait-micros N] [--queue N]
//! ```
//!
//! Compiles the named serving-zoo model at the requested precision,
//! spawns the service, and answers the `mlcnn_serve::wire` frame
//! protocol until killed. Weights come from the fixed serving seed, so
//! any `mlcnn-loadgen --remote` pointed at the same model/precision can
//! verify responses against a local reference plan.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use mlcnn_quant::Precision;
use mlcnn_serve::{find_model, serve_listener, ServeConfig, Service};

struct Args {
    model: String,
    precision: Precision,
    addr: String,
    cfg: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: "lenet5".into(),
        precision: Precision::Fp32,
        addr: "127.0.0.1:7433".into(),
        cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--model" => args.model = val("--model")?,
            "--precision" => args.precision = val("--precision")?.parse()?,
            "--addr" => args.addr = val("--addr")?,
            "--workers" => {
                args.cfg.workers = val("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-batch" => {
                args.cfg.max_batch = val("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--max-wait-micros" => {
                let micros: u64 = val("--max-wait-micros")?
                    .parse()
                    .map_err(|e| format!("--max-wait-micros: {e}"))?;
                args.cfg.max_wait = Duration::from_micros(micros);
            }
            "--queue" => {
                args.cfg.queue_capacity = val("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    args.cfg.precision = args.precision;
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mlcnn-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match find_model(&args.model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("mlcnn-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = match model.compile(args.precision) {
        Ok(p) => Arc::new(p),
        Err(e) => {
            eprintln!("mlcnn-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let svc = match Service::spawn(plan, args.cfg.clone()) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("mlcnn-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mlcnn-served: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "mlcnn-served: {} @ {:?} on {} (workers={}, max_batch={}, max_wait={:?}, queue={})",
        model.name,
        args.precision,
        listener
            .local_addr()
            .map_or(args.addr.clone(), |a| a.to_string()),
        args.cfg.workers,
        args.cfg.max_batch,
        args.cfg.max_wait,
        args.cfg.queue_capacity,
    );
    if let Err(e) = serve_listener(listener, svc) {
        eprintln!("mlcnn-served: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
