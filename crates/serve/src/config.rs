//! Service configuration and its `V0xx` lint gate.

use crate::error::ServeError;
use mlcnn_check::ServeConfigLint;
use mlcnn_core::ExecutionPlan;
use mlcnn_quant::Precision;
use mlcnn_sched::SloSpec;
use std::time::Duration;

/// Default arena memory budget across all workers: 1 GiB.
pub const DEFAULT_ARENA_BUDGET_BYTES: usize = 1 << 30;

/// Knobs of the micro-batching service.
///
/// Validated against the `mlcnn-check` `V0xx` codes before any thread is
/// spawned — [`crate::Service::spawn`] refuses a config the lint denies,
/// the same construction-gating contract `FusedNetwork::compile` has with
/// the S/F codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded submission-queue capacity. Submissions beyond it are
    /// rejected with [`ServeError::QueueFull`] — the queue never grows.
    pub queue_capacity: usize,
    /// Most requests the micro-batcher coalesces into one plan call.
    pub max_batch: usize,
    /// Longest the batcher holds the oldest pending request while waiting
    /// for the batch to fill; when it elapses the batch dispatches
    /// whatever has accumulated.
    pub max_wait: Duration,
    /// Worker threads executing dispatched batches.
    pub workers: usize,
    /// Datapath precision the plan is compiled at (when the service
    /// compiles its own plan via [`crate::Service::compile`]); also linted
    /// against a pre-compiled plan's precision on [`crate::Service::spawn`].
    pub precision: Precision,
    /// Deadline applied to every request that does not carry its own:
    /// requests older than this are shed without running inference.
    pub default_deadline: Option<Duration>,
    /// Budget for the workers' workspace arenas (V007 gate).
    pub arena_budget_bytes: usize,
    /// Default SLO applied to requests that do not carry their own.
    /// `None` preserves the pre-SLO FIFO behavior verbatim: no oracle is
    /// calibrated, no admission control runs, and the batcher never
    /// leaves its FIFO fast path.
    pub slo: Option<SloSpec>,
    /// Derive `(max_batch, max_wait)` from the cost oracle's
    /// batch-latency curve at spawn instead of using the hand-set values
    /// (which then only serve as the batch-size ceiling). Requires a
    /// guaranteed `slo` budget to tune against.
    pub auto_tune: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            max_batch: 8,
            max_wait: Duration::from_micros(2_000),
            workers: available_workers(),
            precision: Precision::Fp32,
            default_deadline: None,
            arena_budget_bytes: DEFAULT_ARENA_BUDGET_BYTES,
            slo: None,
            auto_tune: false,
        }
    }
}

impl ServeConfig {
    /// Select a precision, keeping the other options.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Select a micro-batch policy, keeping the other options.
    pub fn with_batching(mut self, max_batch: usize, max_wait: Duration) -> Self {
        self.max_batch = max_batch;
        self.max_wait = max_wait;
        self
    }

    /// Select a worker count, keeping the other options.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Select a submission-queue capacity, keeping the other options.
    pub fn with_queue(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Attach a default SLO class, keeping the other options.
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Enable oracle-driven `(max_batch, max_wait)` auto-tuning at
    /// spawn, keeping the other options.
    pub fn with_auto_tune(mut self, auto_tune: bool) -> Self {
        self.auto_tune = auto_tune;
        self
    }

    /// Raw-scalar view of this config for the `mlcnn-check` `V0xx` pass,
    /// bound to the plan it would serve.
    pub fn lint(&self, name: &str, plan: &ExecutionPlan) -> ServeConfigLint {
        ServeConfigLint {
            name: name.to_string(),
            queue_capacity: self.queue_capacity,
            max_batch: self.max_batch,
            max_wait_micros: self.max_wait.as_micros().min(u64::MAX as u128) as u64,
            workers: self.workers,
            available_parallelism: available_workers(),
            arena_bytes_per_worker: plan.arena_bytes(self.max_batch),
            arena_budget_bytes: self.arena_budget_bytes,
        }
    }

    /// Run the `V0xx` gate; denials become [`ServeError::Config`].
    pub fn validate(&self, name: &str, plan: &ExecutionPlan) -> Result<(), ServeError> {
        mlcnn_check::check_serve_config_summary(&self.lint(name, plan)).map_err(ServeError::Config)
    }
}

/// Hardware threads the host exposes (1 when unknown).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
