//! Service observability: lock-free counters, a fixed-bucket latency
//! histogram, and a serializable point-in-time snapshot.
//!
//! Everything on the hot path is a relaxed atomic — workers and the
//! submission path never take a lock to record. The histogram uses
//! power-of-two microsecond buckets (bucket `i` counts latencies in
//! `[2^i, 2^{i+1})` µs), so quantiles are exact to within a factor of two
//! and recording is a `leading_zeros` plus one `fetch_add`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of power-of-two latency buckets: covers up to ~2^39 µs ≈ 6 days.
const LATENCY_BUCKETS: usize = 40;

/// Fixed-bucket latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency observation.
    pub fn observe_micros(&self, micros: u64) {
        let idx = (63 - micros.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the bucket counts.
    pub fn counts(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Upper bound (exclusive) in µs of histogram bucket `i` — the value a
/// quantile falling in that bucket reports, i.e. quantiles are
/// conservative (never under-reported) and exact to within 2×.
fn bucket_upper_micros(i: usize) -> u64 {
    1u64 << (i as u32 + 1)
}

/// Quantile (`q` in `[0, 1]`) over snapshot bucket counts.
fn quantile_micros(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    // rank of the q-quantile among `total` ordered observations
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_micros(i);
        }
    }
    bucket_upper_micros(counts.len() - 1)
}

/// Live metrics registry shared by the submission path, batcher, and
/// workers. All mutation is relaxed-atomic; [`Metrics::snapshot`] reads a
/// consistent-enough point-in-time view for reporting.
#[derive(Debug)]
pub struct Metrics {
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests completed with a successful response.
    pub completed: AtomicU64,
    /// Requests completed with an inference error.
    pub failed: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub rejected_full: AtomicU64,
    /// Submissions rejected because the service was shutting down.
    pub rejected_shutdown: AtomicU64,
    /// Requests shed because their deadline expired before execution.
    pub shed_expired: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Current submission-queue depth (gauge).
    pub queue_depth: AtomicUsize,
    /// batch_size_counts[s-1] = number of executed batches of size s.
    batch_sizes: Vec<AtomicU64>,
    /// End-to-end request latency (enqueue → response ready).
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Registry for a service whose batches never exceed `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            batch_sizes: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            latency: LatencyHistogram::default(),
        }
    }

    /// Record one executed batch of `size` requests.
    pub fn observe_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if size >= 1 {
            let idx = (size - 1).min(self.batch_sizes.len() - 1);
            self.batch_sizes[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of every counter plus derived quantiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency_buckets = self.latency.counts().to_vec();
        let batch_size_counts: Vec<u64> = self
            .batch_sizes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let batches: u64 = batch_size_counts.iter().sum();
        let batched_requests: u64 = batch_size_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            p50_micros: quantile_micros(&latency_buckets, 0.50),
            p90_micros: quantile_micros(&latency_buckets, 0.90),
            p99_micros: quantile_micros(&latency_buckets, 0.99),
            batch_size_counts,
            latency_buckets,
        }
    }
}

/// Serializable point-in-time view of [`Metrics`]. Field meanings match
/// the registry; quantiles come from the power-of-two histogram, so they
/// are conservative upper bounds exact to within 2×.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an inference error.
    pub failed: u64,
    /// Submissions rejected on a full queue.
    pub rejected_full: u64,
    /// Submissions rejected during shutdown.
    pub rejected_shutdown: u64,
    /// Requests shed on an expired deadline.
    pub shed_expired: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Mean executed batch size.
    pub mean_batch_size: f64,
    /// Median end-to-end latency in µs (upper bucket bound).
    pub p50_micros: u64,
    /// 90th-percentile end-to-end latency in µs.
    pub p90_micros: u64,
    /// 99th-percentile end-to-end latency in µs.
    pub p99_micros: u64,
    /// `batch_size_counts[s-1]` = executed batches of size `s`.
    pub batch_size_counts: Vec<u64>,
    /// Raw latency histogram (power-of-two µs buckets).
    pub latency_buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// Every request that entered the queue received exactly one terminal
    /// outcome (success, failure, or shed) and none is still in flight.
    pub fn fully_drained(&self) -> bool {
        self.queue_depth == 0 && self.submitted == self.completed + self.failed + self.shed_expired
    }

    /// Hand-rolled JSON rendering (the workspace's serde is a no-op
    /// stand-in), matching the diagnostics JSON idiom in `mlcnn-check`.
    pub fn to_json(&self) -> String {
        fn seq(xs: &[u64]) -> String {
            let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", body.join(","))
        }
        format!(
            concat!(
                "{{\"submitted\":{},\"completed\":{},\"failed\":{},",
                "\"rejected_full\":{},\"rejected_shutdown\":{},",
                "\"shed_expired\":{},\"batches\":{},\"queue_depth\":{},",
                "\"mean_batch_size\":{:.3},\"p50_micros\":{},",
                "\"p90_micros\":{},\"p99_micros\":{},",
                "\"batch_size_counts\":{},\"latency_buckets\":{}}}"
            ),
            self.submitted,
            self.completed,
            self.failed,
            self.rejected_full,
            self.rejected_shutdown,
            self.shed_expired,
            self.batches,
            self.queue_depth,
            self.mean_batch_size,
            self.p50_micros,
            self.p90_micros,
            self.p99_micros,
            seq(&self.batch_size_counts),
            seq(&self.latency_buckets),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::default();
        h.observe_micros(0); // clamps into bucket 0
        h.observe_micros(1);
        h.observe_micros(3);
        h.observe_micros(1024);
        let c = h.counts();
        assert_eq!(c[0], 2);
        assert_eq!(c[1], 1);
        assert_eq!(c[10], 1);
        assert_eq!(c.iter().sum::<u64>(), 4);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let m = Metrics::new(4);
        for _ in 0..99 {
            m.latency.observe_micros(100); // bucket 6: [64, 128)
        }
        m.latency.observe_micros(10_000); // bucket 13: [8192, 16384)
        let s = m.snapshot();
        assert_eq!(s.p50_micros, 128);
        assert_eq!(s.p90_micros, 128);
        assert_eq!(s.p99_micros, 128);
        for _ in 0..10 {
            m.latency.observe_micros(10_000);
        }
        assert_eq!(m.snapshot().p99_micros, 16_384);
    }

    #[test]
    fn batch_size_distribution_and_mean() {
        let m = Metrics::new(4);
        m.observe_batch(1);
        m.observe_batch(4);
        m.observe_batch(4);
        m.observe_batch(9); // clamped into the top bucket
        let s = m.snapshot();
        assert_eq!(s.batch_size_counts, vec![1, 0, 0, 3]);
        assert!((s.mean_batch_size - 13.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn drained_accounting_balances() {
        let m = Metrics::new(2);
        m.submitted.fetch_add(5, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        m.shed_expired.fetch_add(1, Ordering::Relaxed);
        assert!(!m.snapshot().fully_drained());
        m.failed.fetch_add(1, Ordering::Relaxed);
        assert!(m.snapshot().fully_drained());
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = Metrics::new(2);
        m.submitted.fetch_add(1, Ordering::Relaxed);
        m.completed.fetch_add(1, Ordering::Relaxed);
        m.observe_batch(1);
        m.latency.observe_micros(50);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"submitted\":1"));
        assert!(json.contains("\"batch_size_counts\":[1,0]"));
    }
}
