//! Service observability: lock-free counters, a log-linear latency
//! histogram, and a serializable point-in-time snapshot.
//!
//! Everything on the hot path is a relaxed atomic — workers and the
//! submission path never take a lock to record. The histogram uses
//! log-linear microsecond buckets: exact unit buckets below 16 µs, then
//! 16 linear sub-buckets per power-of-two octave, so quantiles are exact
//! to within 1/16 (6.25%) rather than the 2× a pure power-of-two
//! histogram resolves — coarse enough that BENCH_serve.json used to show
//! p50 = p90 = p99 for most models.
//!
//! Beyond the service-wide counters, [`Metrics`] carries a
//! [`ClassMetrics`] pair (indexed by `SloClass::index()`: guaranteed = 0,
//! best-effort = 1) with the per-class admission/shedding counters and
//! latency histograms the SLO scheduler is judged by.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Unit buckets below this value; octaves of `LINEAR_SUBDIV` sub-buckets
/// above it.
const LINEAR_SUBDIV: u64 = 16;

/// Octaves the histogram resolves: `[16, 2^40)` µs (≈ 12 days) before
/// clamping into the top bucket.
const OCTAVES: usize = 36;

/// Total log-linear latency buckets.
const LATENCY_BUCKETS: usize = LINEAR_SUBDIV as usize + OCTAVES * LINEAR_SUBDIV as usize;

/// Bucket index for a latency of `micros`.
fn bucket_index(micros: u64) -> usize {
    if micros < LINEAR_SUBDIV {
        return micros as usize;
    }
    let exp = 63 - micros.leading_zeros() as usize; // ≥ 4
    let octave = exp - 4;
    let sub = ((micros >> octave) & (LINEAR_SUBDIV - 1)) as usize;
    (LINEAR_SUBDIV as usize + octave * LINEAR_SUBDIV as usize + sub).min(LATENCY_BUCKETS - 1)
}

/// Upper bound (exclusive) in µs of histogram bucket `i` — the value a
/// quantile falling in that bucket reports, i.e. quantiles are
/// conservative (never under-reported) and exact to within 1/16.
fn bucket_upper_micros(i: usize) -> u64 {
    if i < LINEAR_SUBDIV as usize {
        return i as u64 + 1;
    }
    let octave = (i - LINEAR_SUBDIV as usize) / LINEAR_SUBDIV as usize;
    let sub = ((i - LINEAR_SUBDIV as usize) % LINEAR_SUBDIV as usize) as u64;
    (LINEAR_SUBDIV + sub + 1) << octave
}

/// Fixed-bucket log-linear latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency observation.
    pub fn observe_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the bucket counts.
    pub fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Quantile (`q` in `[0, 1]`) over snapshot bucket counts.
fn quantile_micros(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    // rank of the q-quantile among `total` ordered observations
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_micros(i);
        }
    }
    bucket_upper_micros(counts.len() - 1)
}

/// Per-SLO-class counters and latency distribution. One instance per
/// class lives in [`Metrics::classes`], indexed by `SloClass::index()`.
#[derive(Debug, Default)]
pub struct ClassMetrics {
    /// Requests of this class accepted into the queue.
    pub admitted: AtomicU64,
    /// Requests refused by cost-based admission control (guaranteed
    /// class only — best-effort is never admission-checked).
    pub rejected_admission: AtomicU64,
    /// Queued requests of this class shed before execution (deadline
    /// expiry or overload eviction).
    pub shed: AtomicU64,
    /// Requests of this class answered successfully.
    pub completed: AtomicU64,
    /// End-to-end latency of completed requests of this class.
    pub latency: LatencyHistogram,
}

impl ClassMetrics {
    fn snapshot(&self) -> ClassSnapshot {
        let latency = self.latency.counts();
        ClassSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_admission: self.rejected_admission.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            p50_micros: quantile_micros(&latency, 0.50),
            p99_micros: quantile_micros(&latency, 0.99),
        }
    }
}

/// Live metrics registry shared by the submission path, batcher, and
/// workers. All mutation is relaxed-atomic; [`Metrics::snapshot`] reads a
/// consistent-enough point-in-time view for reporting.
#[derive(Debug)]
pub struct Metrics {
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests completed with a successful response.
    pub completed: AtomicU64,
    /// Requests completed with an inference error.
    pub failed: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub rejected_full: AtomicU64,
    /// Submissions rejected because the service was shutting down.
    pub rejected_shutdown: AtomicU64,
    /// Requests shed because their deadline expired before execution.
    pub shed_expired: AtomicU64,
    /// Best-effort requests evicted from a full queue to admit
    /// guaranteed work.
    pub shed_overload: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Current submission-queue depth (gauge).
    pub queue_depth: AtomicUsize,
    /// batch_size_counts[s-1] = number of executed batches of size s.
    batch_sizes: Vec<AtomicU64>,
    /// End-to-end request latency (enqueue → response ready).
    pub latency: LatencyHistogram,
    /// Per-SLO-class counters: `[guaranteed, best_effort]` in
    /// `SloClass::index()` order. Classless (legacy FIFO) requests are
    /// accounted as best-effort.
    pub classes: [ClassMetrics; 2],
}

impl Metrics {
    /// Registry for a service whose batches never exceed `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            batch_sizes: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            latency: LatencyHistogram::default(),
            classes: [ClassMetrics::default(), ClassMetrics::default()],
        }
    }

    /// Record one executed batch of `size` requests.
    pub fn observe_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if size >= 1 {
            let idx = (size - 1).min(self.batch_sizes.len() - 1);
            self.batch_sizes[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of every counter plus derived quantiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency_buckets = self.latency.counts();
        let batch_size_counts: Vec<u64> = self
            .batch_sizes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let batches: u64 = batch_size_counts.iter().sum();
        let batched_requests: u64 = batch_size_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            p50_micros: quantile_micros(&latency_buckets, 0.50),
            p90_micros: quantile_micros(&latency_buckets, 0.90),
            p99_micros: quantile_micros(&latency_buckets, 0.99),
            guaranteed: self.classes[0].snapshot(),
            best_effort: self.classes[1].snapshot(),
            batch_size_counts,
            latency_buckets,
        }
    }
}

/// Serializable per-class view within a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassSnapshot {
    /// Requests of this class accepted into the queue.
    pub admitted: u64,
    /// Requests refused at admission (guaranteed only).
    pub rejected_admission: u64,
    /// Queued requests shed before execution.
    pub shed: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Median end-to-end latency in µs (upper bucket bound).
    pub p50_micros: u64,
    /// 99th-percentile end-to-end latency in µs.
    pub p99_micros: u64,
}

impl ClassSnapshot {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"admitted\":{},\"rejected_admission\":{},\"shed\":{},",
                "\"completed\":{},\"p50_micros\":{},\"p99_micros\":{}}}"
            ),
            self.admitted,
            self.rejected_admission,
            self.shed,
            self.completed,
            self.p50_micros,
            self.p99_micros,
        )
    }
}

/// Serializable point-in-time view of [`Metrics`]. Field meanings match
/// the registry; quantiles come from the log-linear histogram, so they
/// are conservative upper bounds exact to within 1/16.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an inference error.
    pub failed: u64,
    /// Submissions rejected on a full queue.
    pub rejected_full: u64,
    /// Submissions rejected during shutdown.
    pub rejected_shutdown: u64,
    /// Requests shed on an expired deadline.
    pub shed_expired: u64,
    /// Best-effort requests evicted under overload.
    pub shed_overload: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Mean executed batch size.
    pub mean_batch_size: f64,
    /// Median end-to-end latency in µs (upper bucket bound).
    pub p50_micros: u64,
    /// 90th-percentile end-to-end latency in µs.
    pub p90_micros: u64,
    /// 99th-percentile end-to-end latency in µs.
    pub p99_micros: u64,
    /// Guaranteed-class counters and quantiles.
    pub guaranteed: ClassSnapshot,
    /// Best-effort-class counters and quantiles (classless requests are
    /// accounted here).
    pub best_effort: ClassSnapshot,
    /// `batch_size_counts[s-1]` = executed batches of size `s`.
    pub batch_size_counts: Vec<u64>,
    /// Raw latency histogram (log-linear µs buckets).
    pub latency_buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// Every request that entered the queue received exactly one terminal
    /// outcome (success, failure, or shed) and none is still in flight.
    pub fn fully_drained(&self) -> bool {
        self.queue_depth == 0
            && self.submitted
                == self.completed + self.failed + self.shed_expired + self.shed_overload
    }

    /// Hand-rolled JSON rendering (the workspace's serde is a no-op
    /// stand-in), matching the diagnostics JSON idiom in `mlcnn-check`.
    pub fn to_json(&self) -> String {
        fn seq(xs: &[u64]) -> String {
            let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", body.join(","))
        }
        format!(
            concat!(
                "{{\"submitted\":{},\"completed\":{},\"failed\":{},",
                "\"rejected_full\":{},\"rejected_shutdown\":{},",
                "\"shed_expired\":{},\"shed_overload\":{},",
                "\"batches\":{},\"queue_depth\":{},",
                "\"mean_batch_size\":{:.3},\"p50_micros\":{},",
                "\"p90_micros\":{},\"p99_micros\":{},",
                "\"classes\":{{\"guaranteed\":{},\"best_effort\":{}}},",
                "\"batch_size_counts\":{},\"latency_buckets\":{}}}"
            ),
            self.submitted,
            self.completed,
            self.failed,
            self.rejected_full,
            self.rejected_shutdown,
            self.shed_expired,
            self.shed_overload,
            self.batches,
            self.queue_depth,
            self.mean_batch_size,
            self.p50_micros,
            self.p90_micros,
            self.p99_micros,
            self.guaranteed.to_json(),
            self.best_effort.to_json(),
            seq(&self.batch_size_counts),
            seq(&self.latency_buckets),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_linear() {
        // exact unit buckets below 16
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(15), 15);
        // 16 sub-buckets per octave above
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(100), 57); // octave [64,128), sub 9
        assert_eq!(bucket_index(1024), 112);
        assert_eq!(bucket_index(10_000), 163);
        // upper bounds are exclusive and tight to 1/16
        assert_eq!(bucket_upper_micros(3), 4);
        assert_eq!(bucket_upper_micros(57), 104);
        assert_eq!(bucket_upper_micros(112), 1088);
        assert_eq!(bucket_upper_micros(163), 10_240);
        // every value maps inside [lower, upper) of its bucket
        for v in [0u64, 1, 7, 16, 63, 64, 100, 4096, 8191, 1 << 30] {
            let i = bucket_index(v);
            assert!(v < bucket_upper_micros(i), "{v} outside bucket {i}");
            if i > 0 {
                assert!(v >= bucket_upper_micros(i - 1), "{v} below bucket {i}");
            }
        }
        let h = LatencyHistogram::default();
        h.observe_micros(0);
        h.observe_micros(3);
        h.observe_micros(100);
        let c = h.counts();
        assert_eq!(c[0], 1);
        assert_eq!(c[3], 1);
        assert_eq!(c[57], 1);
        assert_eq!(c.iter().sum::<u64>(), 3);
    }

    #[test]
    fn quantiles_are_conservative_and_resolve_the_tail() {
        let m = Metrics::new(4);
        for _ in 0..99 {
            m.latency.observe_micros(100); // bucket upper 104
        }
        m.latency.observe_micros(10_000); // bucket upper 10_240
        let s = m.snapshot();
        assert_eq!(s.p50_micros, 104);
        assert_eq!(s.p90_micros, 104);
        assert_eq!(s.p99_micros, 104);
        for _ in 0..10 {
            m.latency.observe_micros(10_000);
        }
        // the tail no longer collapses into the body: p99 lands in the
        // 10 ms bucket, within 1/16 of the true value
        assert_eq!(m.snapshot().p99_micros, 10_240);
    }

    #[test]
    fn nearby_values_no_longer_collapse_into_one_bucket() {
        // 4100 and 8100 µs shared the [4096, 8192) power-of-two bucket
        // before; log-linear separates them.
        assert_ne!(bucket_index(4_100), bucket_index(8_100));
        assert_ne!(bucket_index(4_100), bucket_index(5_100));
    }

    #[test]
    fn batch_size_distribution_and_mean() {
        let m = Metrics::new(4);
        m.observe_batch(1);
        m.observe_batch(4);
        m.observe_batch(4);
        m.observe_batch(9); // clamped into the top bucket
        let s = m.snapshot();
        assert_eq!(s.batch_size_counts, vec![1, 0, 0, 3]);
        assert!((s.mean_batch_size - 13.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn drained_accounting_balances() {
        let m = Metrics::new(2);
        m.submitted.fetch_add(6, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        m.shed_expired.fetch_add(1, Ordering::Relaxed);
        m.shed_overload.fetch_add(1, Ordering::Relaxed);
        assert!(!m.snapshot().fully_drained());
        m.failed.fetch_add(1, Ordering::Relaxed);
        assert!(m.snapshot().fully_drained());
    }

    #[test]
    fn class_counters_snapshot_independently() {
        let m = Metrics::new(2);
        m.classes[0].admitted.fetch_add(5, Ordering::Relaxed);
        m.classes[0].completed.fetch_add(5, Ordering::Relaxed);
        m.classes[0].latency.observe_micros(100);
        m.classes[1].admitted.fetch_add(2, Ordering::Relaxed);
        m.classes[1].shed.fetch_add(2, Ordering::Relaxed);
        m.classes[1]
            .rejected_admission
            .fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.guaranteed.admitted, 5);
        assert_eq!(s.guaranteed.completed, 5);
        assert_eq!(s.guaranteed.p50_micros, 104);
        assert_eq!(s.best_effort.shed, 2);
        assert_eq!(s.best_effort.rejected_admission, 1);
        assert_eq!(s.best_effort.p99_micros, 0); // no completions recorded
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = Metrics::new(2);
        m.submitted.fetch_add(1, Ordering::Relaxed);
        m.completed.fetch_add(1, Ordering::Relaxed);
        m.classes[0].admitted.fetch_add(1, Ordering::Relaxed);
        m.observe_batch(1);
        m.latency.observe_micros(50);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"submitted\":1"));
        assert!(json.contains("\"shed_overload\":0"));
        assert!(json.contains("\"classes\":{\"guaranteed\":{\"admitted\":1,"));
        assert!(json.contains("\"batch_size_counts\":[1,0]"));
    }
}
