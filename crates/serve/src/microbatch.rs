//! The dynamic micro-batching decision core, in virtual time.
//!
//! [`Microbatcher`] owns the pending-request window and decides, given a
//! clock reading, when a batch dispatches and what goes into it under the
//! `(max_batch, max_wait)` policy:
//!
//! * a batch dispatches **immediately** once `max_batch` requests are
//!   pending;
//! * otherwise it dispatches when the *oldest* pending request has waited
//!   `max_wait`, taking whatever has accumulated.
//!
//! Batch *membership* depends on the SLO mix. While every pending request
//! is classless the window is strictly FIFO — byte-for-byte the pre-SLO
//! behavior. Once any pending request carries an EDF deadline
//! ([`Arrival::edf_deadline_nanos`], set by the service for `guaranteed`
//! work), dispatch picks earliest-deadline-first: deadline-bearing
//! requests ordered by deadline, then deadline-free requests in arrival
//! order. Ties and the no-deadline tail fall back to arrival sequence, so
//! the schedule is total and deterministic.
//!
//! The window also supports overload eviction: [`Microbatcher::
//! shed_newest_sheddable`] removes the *newest* sheddable (best-effort)
//! request — the one that has invested the least wait time — which is how
//! the service makes room for guaranteed work when the queue is full.
//!
//! Time is an opaque `u64` nanosecond counter rather than `Instant`, so
//! the exact logic the service's batcher thread runs is also driveable
//! from proptests with a simulated clock — the batching guarantees
//! (no request outwaits `max_wait` while the batcher is responsive, no
//! batch exceeds `max_batch`, FIFO order for classless windows,
//! drain-exactly-once) are checked on this type directly in
//! `tests/microbatch_props.rs`.

use std::collections::VecDeque;

/// The `(max_batch, max_wait)` coalescing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most requests per dispatched batch.
    pub max_batch: usize,
    /// Longest the oldest pending request waits before dispatch, in
    /// nanoseconds of the caller's clock.
    pub max_wait_nanos: u64,
}

/// Scheduling attributes of one admission into the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Clock reading at admission.
    pub now_nanos: u64,
    /// Absolute EDF deadline (same clock) for guaranteed work; `None`
    /// schedules the request behind all deadline-bearing peers, FIFO.
    pub edf_deadline_nanos: Option<u64>,
    /// Whether overload eviction may drop this request (best-effort).
    pub sheddable: bool,
}

impl Arrival {
    /// A classless arrival at `now_nanos` — FIFO, never shed by eviction.
    pub fn fifo(now_nanos: u64) -> Arrival {
        Arrival {
            now_nanos,
            edf_deadline_nanos: None,
            sheddable: false,
        }
    }
}

/// No-deadline sentinel: sorts after every real deadline.
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct Entry<T> {
    item: T,
    arrived: u64,
    edf: u64,
    sheddable: bool,
    seq: u64,
}

/// Pending-request window + dispatch decisions. Generic over the payload
/// so the service batches full requests while tests batch bare ids.
#[derive(Debug)]
pub struct Microbatcher<T> {
    policy: BatchPolicy,
    pending: VecDeque<Entry<T>>,
    /// Pending entries carrying an EDF deadline; FIFO fast path when 0.
    edf_entries: usize,
    sheddable_entries: usize,
    next_seq: u64,
}

impl<T> Microbatcher<T> {
    /// Empty window under `policy`. `max_batch` is clamped to ≥ 1 (the
    /// `V002` lint rejects zero before a service is built; the clamp keeps
    /// the type total).
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy: BatchPolicy {
                max_batch: policy.max_batch.max(1),
                ..policy
            },
            pending: VecDeque::new(),
            edf_entries: 0,
            sheddable_entries: 0,
            next_seq: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Admit a classless request observed at `now_nanos` (FIFO, never
    /// evicted) — the pre-SLO submission path.
    pub fn push(&mut self, item: T, now_nanos: u64) {
        self.push_at(item, Arrival::fifo(now_nanos));
    }

    /// Admit a request with explicit scheduling attributes.
    pub fn push_at(&mut self, item: T, arrival: Arrival) {
        let edf = arrival.edf_deadline_nanos.unwrap_or(NO_DEADLINE);
        if edf != NO_DEADLINE {
            self.edf_entries += 1;
        }
        if arrival.sheddable {
            self.sheddable_entries += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(Entry {
            item,
            arrived: arrival.now_nanos,
            edf,
            sheddable: arrival.sheddable,
            seq,
        });
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pending requests carrying an EDF deadline — the queue-depth input
    /// to cost-based admission control.
    pub fn deadline_entries(&self) -> usize {
        self.edf_entries
    }

    /// Whether overload eviction has anything to take.
    pub fn has_sheddable(&self) -> bool {
        self.sheddable_entries > 0
    }

    /// Evict the *newest* sheddable request (least wait time invested),
    /// returning its payload. `None` when nothing is sheddable.
    pub fn shed_newest_sheddable(&mut self) -> Option<T> {
        if self.sheddable_entries == 0 {
            return None;
        }
        let idx = self.pending.iter().rposition(|e| e.sheddable)?;
        let entry = self.pending.remove(idx)?;
        self.sheddable_entries -= 1;
        if entry.edf != NO_DEADLINE {
            self.edf_entries -= 1;
        }
        Some(entry.item)
    }

    /// The clock reading at which the current window must dispatch even
    /// if it never fills: oldest arrival + `max_wait`. `None` when empty.
    pub fn next_deadline(&self) -> Option<u64> {
        self.pending
            .front()
            .map(|e| e.arrived.saturating_add(self.policy.max_wait_nanos))
    }

    /// Dispatch decision at `now_nanos`: returns the next batch (never
    /// more than `max_batch` items) when the window is full or the oldest
    /// request has aged out, `None` when the batcher should keep waiting
    /// (until [`Self::next_deadline`] or the next push). Membership is
    /// FIFO for an all-classless window, EDF otherwise (see the
    /// [module docs](self)).
    pub fn poll(&mut self, now_nanos: u64) -> Option<Vec<T>> {
        let full = self.pending.len() >= self.policy.max_batch;
        let aged = self.next_deadline().is_some_and(|d| now_nanos >= d);
        if !(full || aged) {
            return None;
        }
        let take = self.pending.len().min(self.policy.max_batch);
        if self.edf_entries == 0 {
            // classless window: verbatim FIFO dispatch
            return Some(self.pending.drain(..take).map(|e| e.item).collect());
        }
        // EDF: pick the `take` entries with the earliest (deadline, seq)
        let mut order: Vec<usize> = (0..self.pending.len()).collect();
        order.sort_by_key(|&i| (self.pending[i].edf, self.pending[i].seq));
        order.truncate(take);
        order.sort_unstable(); // ascending positions for stable removal
        let mut batch: Vec<Entry<T>> = Vec::with_capacity(take);
        for (removed, idx) in order.into_iter().enumerate() {
            let entry = self
                .pending
                .remove(idx - removed)
                .expect("selected index in bounds");
            if entry.edf != NO_DEADLINE {
                self.edf_entries -= 1;
            }
            if entry.sheddable {
                self.sheddable_entries -= 1;
            }
            batch.push(entry);
        }
        batch.sort_by_key(|e| (e.edf, e.seq));
        Some(batch.into_iter().map(|e| e.item).collect())
    }

    /// Shutdown path: flush every pending request as FIFO batches of at
    /// most `max_batch`, leaving the window empty. Each admitted request
    /// appears in exactly one batch across all `poll`/`drain_all` calls.
    pub fn drain_all(&mut self) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            let take = self.pending.len().min(self.policy.max_batch);
            out.push(self.pending.drain(..take).map(|e| e.item).collect());
        }
        self.edf_entries = 0;
        self.sheddable_entries = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(max_batch: usize, max_wait_nanos: u64) -> Microbatcher<u32> {
        Microbatcher::new(BatchPolicy {
            max_batch,
            max_wait_nanos,
        })
    }

    fn edf(now: u64, deadline: u64) -> Arrival {
        Arrival {
            now_nanos: now,
            edf_deadline_nanos: Some(deadline),
            sheddable: false,
        }
    }

    fn best_effort(now: u64) -> Arrival {
        Arrival {
            now_nanos: now,
            edf_deadline_nanos: None,
            sheddable: true,
        }
    }

    #[test]
    fn full_window_dispatches_immediately() {
        let mut b = mb(3, 1_000_000);
        b.push(1, 0);
        b.push(2, 10);
        assert_eq!(b.poll(10), None, "underfull and young: keep waiting");
        b.push(3, 20);
        assert_eq!(b.poll(20), Some(vec![1, 2, 3]));
        assert!(b.is_empty());
    }

    #[test]
    fn aged_window_dispatches_partial() {
        let mut b = mb(8, 1_000);
        b.push(7, 100);
        assert_eq!(b.next_deadline(), Some(1_100));
        assert_eq!(b.poll(1_099), None);
        assert_eq!(b.poll(1_100), Some(vec![7]));
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn zero_wait_dispatches_on_first_poll() {
        let mut b = mb(8, 0);
        b.push(1, 5);
        assert_eq!(b.poll(5), Some(vec![1]));
    }

    #[test]
    fn overfull_window_dispatches_fifo_chunks() {
        let mut b = mb(2, 1_000);
        for i in 0..5 {
            b.push(i, i as u64);
        }
        assert_eq!(b.poll(4), Some(vec![0, 1]));
        assert_eq!(b.poll(4), Some(vec![2, 3]));
        assert_eq!(b.poll(4), None, "remaining singleton is still young");
        assert_eq!(b.drain_all(), vec![vec![4]]);
    }

    #[test]
    fn deadline_tracks_oldest_not_newest() {
        let mut b = mb(8, 1_000);
        b.push(1, 0);
        b.push(2, 999);
        assert_eq!(b.next_deadline(), Some(1_000));
        assert_eq!(b.poll(1_000), Some(vec![1, 2]), "aged window takes all");
    }

    #[test]
    fn edf_overrides_arrival_order_when_deadlines_differ() {
        let mut b = mb(2, 1_000);
        b.push_at(1, edf(0, 9_000)); // late deadline, first in
        b.push_at(2, edf(10, 3_000)); // tight deadline, second in
        b.push_at(3, edf(20, 6_000));
        // full window → earliest two deadlines dispatch first
        assert_eq!(b.poll(20), Some(vec![2, 3]));
        assert_eq!(b.deadline_entries(), 1);
        assert_eq!(b.drain_all(), vec![vec![1]]);
        assert_eq!(b.deadline_entries(), 0);
    }

    #[test]
    fn deadline_bearing_work_preempts_best_effort() {
        let mut b = mb(2, 1_000);
        b.push_at(1, best_effort(0));
        b.push_at(2, best_effort(5));
        b.push_at(3, edf(10, 2_000));
        // EDF mode: the guaranteed request jumps the two older
        // best-effort ones; the tie among the tail breaks by arrival
        assert_eq!(b.poll(10), Some(vec![3, 1]));
        assert_eq!(b.poll(1_005), Some(vec![2]));
    }

    #[test]
    fn classless_window_is_verbatim_fifo_even_with_sheddable_entries() {
        let mut b = mb(2, 1_000);
        b.push_at(1, best_effort(0));
        b.push_at(2, best_effort(1));
        b.push(3, 2);
        // no EDF entries pending → the FIFO fast path runs
        assert_eq!(b.poll(2), Some(vec![1, 2]));
    }

    #[test]
    fn shed_takes_newest_sheddable_only() {
        let mut b = mb(8, 1_000);
        b.push(1, 0); // classless: not sheddable
        b.push_at(2, best_effort(1));
        b.push_at(3, edf(2, 5_000));
        b.push_at(4, best_effort(3));
        assert!(b.has_sheddable());
        assert_eq!(b.shed_newest_sheddable(), Some(4));
        assert_eq!(b.shed_newest_sheddable(), Some(2));
        assert_eq!(b.shed_newest_sheddable(), None, "1 and 3 are protected");
        assert_eq!(b.len(), 2);
        assert_eq!(b.deadline_entries(), 1);
    }

    #[test]
    fn eviction_keeps_edf_accounting_consistent() {
        let mut b = mb(8, 1_000);
        b.push_at(
            1,
            Arrival {
                now_nanos: 0,
                edf_deadline_nanos: Some(100),
                sheddable: true,
            },
        );
        b.push_at(2, edf(1, 50));
        assert_eq!(b.deadline_entries(), 2);
        assert_eq!(b.shed_newest_sheddable(), Some(1));
        assert_eq!(b.deadline_entries(), 1);
        // remaining EDF entry still schedules
        assert_eq!(b.poll(2_000), Some(vec![2]));
        assert_eq!(b.deadline_entries(), 0);
    }
}
