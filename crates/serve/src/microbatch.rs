//! The dynamic micro-batching decision core, in virtual time.
//!
//! [`Microbatcher`] owns the pending-request window and decides, given a
//! clock reading, when a batch dispatches and what goes into it under the
//! `(max_batch, max_wait)` policy:
//!
//! * a batch dispatches **immediately** once `max_batch` requests are
//!   pending (the oldest `max_batch` of them, FIFO);
//! * otherwise it dispatches when the *oldest* pending request has waited
//!   `max_wait`, taking whatever has accumulated.
//!
//! Time is an opaque `u64` nanosecond counter rather than `Instant`, so
//! the exact logic the service's batcher thread runs is also driveable
//! from proptests with a simulated clock — the batching guarantees
//! (no request outwaits `max_wait` while the batcher is responsive, no
//! batch exceeds `max_batch`, FIFO order, drain-exactly-once) are checked
//! on this type directly in `tests/microbatch_props.rs`.

use std::collections::VecDeque;

/// The `(max_batch, max_wait)` coalescing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most requests per dispatched batch.
    pub max_batch: usize,
    /// Longest the oldest pending request waits before dispatch, in
    /// nanoseconds of the caller's clock.
    pub max_wait_nanos: u64,
}

/// Pending-request window + dispatch decisions. Generic over the payload
/// so the service batches full requests while tests batch bare ids.
#[derive(Debug)]
pub struct Microbatcher<T> {
    policy: BatchPolicy,
    pending: VecDeque<(T, u64)>,
}

impl<T> Microbatcher<T> {
    /// Empty window under `policy`. `max_batch` is clamped to ≥ 1 (the
    /// `V002` lint rejects zero before a service is built; the clamp keeps
    /// the type total).
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy: BatchPolicy {
                max_batch: policy.max_batch.max(1),
                ..policy
            },
            pending: VecDeque::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Admit a request observed at `now_nanos`.
    pub fn push(&mut self, item: T, now_nanos: u64) {
        self.pending.push_back((item, now_nanos));
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The clock reading at which the current window must dispatch even
    /// if it never fills: oldest arrival + `max_wait`. `None` when empty.
    pub fn next_deadline(&self) -> Option<u64> {
        self.pending
            .front()
            .map(|(_, t)| t.saturating_add(self.policy.max_wait_nanos))
    }

    /// Dispatch decision at `now_nanos`: returns the next batch (FIFO,
    /// never more than `max_batch` items) when the window is full or the
    /// oldest request has aged out, `None` when the batcher should keep
    /// waiting (until [`Self::next_deadline`] or the next push).
    pub fn poll(&mut self, now_nanos: u64) -> Option<Vec<T>> {
        let full = self.pending.len() >= self.policy.max_batch;
        let aged = self.next_deadline().is_some_and(|d| now_nanos >= d);
        if !(full || aged) {
            return None;
        }
        let take = self.pending.len().min(self.policy.max_batch);
        Some(self.pending.drain(..take).map(|(item, _)| item).collect())
    }

    /// Shutdown path: flush every pending request as FIFO batches of at
    /// most `max_batch`, leaving the window empty. Each admitted request
    /// appears in exactly one batch across all `poll`/`drain_all` calls.
    pub fn drain_all(&mut self) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            let take = self.pending.len().min(self.policy.max_batch);
            out.push(self.pending.drain(..take).map(|(item, _)| item).collect());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(max_batch: usize, max_wait_nanos: u64) -> Microbatcher<u32> {
        Microbatcher::new(BatchPolicy {
            max_batch,
            max_wait_nanos,
        })
    }

    #[test]
    fn full_window_dispatches_immediately() {
        let mut b = mb(3, 1_000_000);
        b.push(1, 0);
        b.push(2, 10);
        assert_eq!(b.poll(10), None, "underfull and young: keep waiting");
        b.push(3, 20);
        assert_eq!(b.poll(20), Some(vec![1, 2, 3]));
        assert!(b.is_empty());
    }

    #[test]
    fn aged_window_dispatches_partial() {
        let mut b = mb(8, 1_000);
        b.push(7, 100);
        assert_eq!(b.next_deadline(), Some(1_100));
        assert_eq!(b.poll(1_099), None);
        assert_eq!(b.poll(1_100), Some(vec![7]));
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn zero_wait_dispatches_on_first_poll() {
        let mut b = mb(8, 0);
        b.push(1, 5);
        assert_eq!(b.poll(5), Some(vec![1]));
    }

    #[test]
    fn overfull_window_dispatches_fifo_chunks() {
        let mut b = mb(2, 1_000);
        for i in 0..5 {
            b.push(i, i as u64);
        }
        assert_eq!(b.poll(4), Some(vec![0, 1]));
        assert_eq!(b.poll(4), Some(vec![2, 3]));
        assert_eq!(b.poll(4), None, "remaining singleton is still young");
        assert_eq!(b.drain_all(), vec![vec![4]]);
    }

    #[test]
    fn deadline_tracks_oldest_not_newest() {
        let mut b = mb(8, 1_000);
        b.push(1, 0);
        b.push(2, 999);
        assert_eq!(b.next_deadline(), Some(1_000));
        assert_eq!(b.poll(1_000), Some(vec![1, 2]), "aged window takes all");
    }
}
