//! Acceptance: the P0xx plan verifier runs in deny mode on every route
//! into serving — a hand-corrupted plan is rejected before any `Service`
//! thread spawns, while the same plan uncorrupted serves normally.

use std::sync::Arc;

use mlcnn_quant::Precision;
use mlcnn_serve::{find_model, ServeConfig, ServeError, Service};
use mlcnn_tensor::{init, Shape4, Tensor};

fn plan_and_input(name: &str) -> (mlcnn_core::ExecutionPlan, Tensor<f32>) {
    let model = find_model(name).unwrap();
    let plan = model.compile(Precision::Fp32).unwrap();
    let shape = model.input;
    let input = init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(3),
    );
    (plan, input)
}

#[test]
fn valid_plan_spawns_and_serves() {
    let (plan, input) = plan_and_input("lenet5");
    let svc = Service::spawn(Arc::new(plan), ServeConfig::default()).unwrap();
    let out = svc.infer(input).unwrap();
    assert_eq!(out.shape().w, 10);
}

#[test]
fn corrupted_arena_is_rejected_before_any_thread_spawns() {
    let (mut plan, input) = plan_and_input("lenet5");
    // shrink the activation arena: executing this plan would write past
    // its ping-pong buffers
    plan.corrupt_buf_item_len_for_tests(1);
    let err = Service::spawn(Arc::new(plan), ServeConfig::default()).unwrap_err();
    match err {
        ServeError::Config(msg) => {
            assert!(msg.contains("P003"), "expected a P003 denial, got: {msg}")
        }
        other => panic!("expected Config error, got {other:?}"),
    }
    drop(input);
}

#[test]
fn corrupted_rounding_is_rejected_at_reduced_precision() {
    let model = find_model("mlp-mini").unwrap();
    let mut plan = model.compile(Precision::Fp16).unwrap();
    plan.corrupt_round_after_for_tests(0);
    let cfg = ServeConfig {
        precision: Precision::Fp16,
        ..ServeConfig::default()
    };
    let err = Service::spawn(Arc::new(plan), cfg).unwrap_err();
    match err {
        ServeError::Config(msg) => {
            assert!(msg.contains("P009"), "expected a P009 denial, got: {msg}")
        }
        other => panic!("expected Config error, got {other:?}"),
    }
}

#[test]
fn every_zoo_plan_passes_the_gate_at_every_precision() {
    for model in mlcnn_serve::serving_zoo() {
        for precision in Precision::ALL {
            let plan = model.compile(precision).unwrap();
            plan.verify()
                .unwrap_or_else(|e| panic!("{}@{precision}: {e}", model.name));
        }
    }
}
