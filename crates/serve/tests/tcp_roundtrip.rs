//! End-to-end TCP test: a real listener on an ephemeral port, the
//! blocking client, and bitwise parity with the reference plan through
//! the full wire → service → wire path.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use mlcnn_core::Workspace;
use mlcnn_quant::Precision;
use mlcnn_serve::{find_model, serve_listener, Client, NamedService, ServeConfig, Service};
use mlcnn_tensor::{init, Shape4, Tensor};

fn item(shape: Shape4, seed: u64) -> Tensor<f32> {
    init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(seed),
    )
}

#[test]
fn tcp_round_trip_matches_plan_forward() {
    let model = find_model("lenet5").unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    let cfg = ServeConfig::default().with_batching(4, Duration::from_micros(200));
    let svc = Service::spawn(Arc::clone(&plan), cfg).unwrap();
    let backend = Arc::new(NamedService::new(model.name, svc));

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let acceptor = Arc::clone(&backend);
    // the accept loop blocks forever; the thread dies with the process
    std::thread::spawn(move || {
        let _ = serve_listener(listener, acceptor);
    });

    // several clients in parallel, each checking bitwise parity
    std::thread::scope(|s| {
        for c in 0..3u64 {
            let plan = Arc::clone(&plan);
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ws = Workspace::for_plan(&plan, 1);
                for i in 0..4u64 {
                    let x = item(model.input, 40 + 10 * c + i);
                    let got = client.infer(x.clone()).unwrap();
                    let want = plan.forward(&x, &mut ws).unwrap();
                    assert_eq!(got, want, "TCP response diverges from plan.forward");
                }
            });
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let json = client.metrics_json().unwrap();
    assert!(
        json.contains("\"submitted\":12"),
        "unexpected metrics: {json}"
    );
    assert!(
        json.contains("\"queue_depth\":0"),
        "requests still queued: {json}"
    );

    // malformed input shape travels back as a wire error, connection stays up
    let bad = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 2));
    let err = client.infer(bad).unwrap_err();
    assert!(err.to_string().contains("expected one"), "{err}");
    assert!(
        client.metrics_json().is_ok(),
        "connection died after an error reply"
    );

    // addressing the single model by name works; a wrong name is a
    // typed wire error and the connection survives it too
    let x = item(model.input, 99);
    client.infer_model("lenet5", x.clone()).unwrap();
    let err = client.infer_model("resnet18", x).unwrap_err();
    assert!(err.to_string().contains("unknown model"), "{err}");
    assert!(client.metrics_json().is_ok());

    // admin frames against a registry-less server: typed refusal
    let err = client.publish("lenet5", 2).unwrap_err();
    assert!(err.to_string().contains("no registry"), "{err}");
}
