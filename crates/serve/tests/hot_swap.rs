//! Acceptance: publishing a new revision under concurrent load loses
//! zero in-flight requests, every response is bitwise attributable to
//! exactly one revision (the one [`Router::submit`] reported), and
//! rollback restores the previous revision's behavior.

use std::path::PathBuf;
use std::sync::Arc;

use mlcnn_core::{ExecutionPlan, PlanOptions, Workspace};
use mlcnn_nn::spec::build_network;
use mlcnn_quant::Precision;
use mlcnn_registry::{Artifact, ModelRegistry};
use mlcnn_serve::{find_model, Router, ServeConfig, ServeError};
use mlcnn_tensor::{init, Shape4, Tensor};

const MODEL: &str = "mlp-mini";
const SEED_REV1: u64 = 41;
const SEED_REV2: u64 = 42;

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("mlcnn-swap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn pack(dir: &std::path::Path, revision: u64, seed: u64) {
    let zoo = find_model(MODEL).unwrap();
    let mut net = build_network(&zoo.specs, zoo.input, seed).unwrap();
    let artifact = Artifact {
        model: MODEL.to_string(),
        revision,
        specs: zoo.specs.clone(),
        input: zoo.input,
        precision: Precision::Fp32,
        params: net.export_params(),
    };
    std::fs::write(dir.join(artifact.file_name()), artifact.encode().unwrap()).unwrap();
}

fn reference(seed: u64, input: &Tensor<f32>) -> Vec<f32> {
    let zoo = find_model(MODEL).unwrap();
    let mut net = build_network(&zoo.specs, zoo.input, seed).unwrap();
    let params = net.export_params();
    let plan = ExecutionPlan::compile(
        &zoo.specs,
        &params,
        zoo.input,
        PlanOptions::default().with_precision(Precision::Fp32),
    )
    .unwrap();
    let mut ws = Workspace::new();
    plan.forward(input, &mut ws).unwrap().as_slice().to_vec()
}

fn fixed_input() -> Tensor<f32> {
    let shape = find_model(MODEL).unwrap().input;
    init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(11),
    )
}

/// Build a two-revision registry with revision 1 active and a router
/// over it.
fn router_on_rev1(scratch: &Scratch) -> Arc<Router> {
    pack(&scratch.0, 1, SEED_REV1);
    pack(&scratch.0, 2, SEED_REV2);
    let registry = ModelRegistry::open(&scratch.0).unwrap();
    registry.publish(MODEL, 1).unwrap(); // open() activated rev 2 (highest)
    Arc::new(Router::new(Arc::new(registry), ServeConfig::default()).unwrap())
}

/// The headline swap contract, exercised in-process: concurrent
/// submitters keep running while revision 2 is published; nothing is
/// lost, and each response matches the revision its ticket was
/// attributed to — never a blend, never the other one.
#[test]
fn swap_under_load_loses_nothing_and_attributes_every_response() {
    let scratch = Scratch::new("underload");
    let router = router_on_rev1(&scratch);
    let input = fixed_input();
    let ref1 = reference(SEED_REV1, &input);
    let ref2 = reference(SEED_REV2, &input);
    assert_ne!(ref1, ref2, "revisions must be distinguishable");

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 60;
    let mut from_rev1 = 0usize;
    let mut from_rev2 = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let router = Arc::clone(&router);
            let input = input.clone();
            let (ref1, ref2) = (&ref1, &ref2);
            handles.push(s.spawn(move || {
                let mut counts = (0usize, 0usize);
                for _ in 0..PER_CLIENT {
                    // submit() must never fail across the swap
                    let (revision, ticket) = router.submit(MODEL, input.clone()).unwrap();
                    let out = ticket.wait().unwrap();
                    let want = match revision {
                        1 => &ref1[..],
                        2 => &ref2[..],
                        r => panic!("response attributed to unknown revision {r}"),
                    };
                    assert_eq!(
                        out.as_slice(),
                        want,
                        "response does not match its attributed revision {revision}"
                    );
                    if revision == 1 {
                        counts.0 += 1;
                    } else {
                        counts.1 += 1;
                    }
                }
                counts
            }));
        }

        // swap mid-load
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (active, previous) = router.publish(MODEL, 2).unwrap();
        assert_eq!((active, previous), (2, 1));

        for h in handles {
            let (r1, r2) = h.join().unwrap();
            from_rev1 += r1;
            from_rev2 += r2;
        }
    });

    assert_eq!(
        from_rev1 + from_rev2,
        CLIENTS * PER_CLIENT,
        "every submission must resolve exactly once"
    );
    assert!(from_rev2 > 0, "swap never took effect under load");
    assert_eq!(router.active_revision(MODEL).unwrap(), 2);

    // after the dust settles, only rev 2 answers
    let out = router.infer(MODEL, input.clone()).unwrap();
    assert_eq!(out.as_slice(), &ref2[..]);
}

#[test]
fn rollback_restores_previous_revision_behavior() {
    let scratch = Scratch::new("rollback");
    let router = router_on_rev1(&scratch);
    let input = fixed_input();
    let ref1 = reference(SEED_REV1, &input);
    let ref2 = reference(SEED_REV2, &input);

    assert_eq!(
        router.infer(MODEL, input.clone()).unwrap().as_slice(),
        &ref1[..]
    );

    let (active, previous) = router.publish(MODEL, 2).unwrap();
    assert_eq!((active, previous), (2, 1));
    assert_eq!(
        router.infer(MODEL, input.clone()).unwrap().as_slice(),
        &ref2[..]
    );

    let (active, previous) = router.rollback(MODEL).unwrap();
    assert_eq!((active, previous), (1, 2));
    assert_eq!(
        router.infer(MODEL, input.clone()).unwrap().as_slice(),
        &ref1[..]
    );
    assert_eq!(router.active_revision(MODEL).unwrap(), 1);
}

#[test]
fn publish_guards_and_noop_republish() {
    let scratch = Scratch::new("guards");
    let router = router_on_rev1(&scratch);

    // unknown revision: typed error, endpoint untouched
    match router.publish(MODEL, 9) {
        Err(ServeError::Registry(msg)) => assert!(msg.contains("revision 9"), "{msg}"),
        other => panic!("want Registry error, got {other:?}"),
    }
    assert_eq!(router.active_revision(MODEL).unwrap(), 1);

    // unknown model: typed error
    match router.publish("resnet18", 1) {
        Err(ServeError::UnknownModel(name)) => assert_eq!(name, "resnet18"),
        other => panic!("want UnknownModel, got {other:?}"),
    }

    // republishing the active revision is a no-op success
    assert_eq!(router.publish(MODEL, 1).unwrap(), (1, 1));
    assert_eq!(router.active_revision(MODEL).unwrap(), 1);
}

/// Multiple models route independently over the shared pool, and a swap
/// of one never perturbs the other.
#[test]
fn models_route_independently_across_a_swap() {
    let scratch = Scratch::new("multi");
    pack(&scratch.0, 1, SEED_REV1);
    pack(&scratch.0, 2, SEED_REV2);
    // second model, single revision
    let other = find_model("vgg-nano").unwrap();
    let mut net = build_network(&other.specs, other.input, 7).unwrap();
    let artifact = Artifact {
        model: other.name.to_string(),
        revision: 1,
        specs: other.specs.clone(),
        input: other.input,
        precision: Precision::Fp32,
        params: net.export_params(),
    };
    std::fs::write(
        scratch.0.join(artifact.file_name()),
        artifact.encode().unwrap(),
    )
    .unwrap();

    let registry = ModelRegistry::open(&scratch.0).unwrap();
    registry.publish(MODEL, 1).unwrap();
    let router = Router::new(Arc::new(registry), ServeConfig::default()).unwrap();
    assert_eq!(
        router.models(),
        vec![MODEL.to_string(), "vgg-nano".to_string()]
    );

    let nano_in = init::uniform(
        Shape4::new(1, other.input.c, other.input.h, other.input.w),
        -1.0,
        1.0,
        &mut init::rng(3),
    );
    let before = router.infer("vgg-nano", nano_in.clone()).unwrap();
    router.publish(MODEL, 2).unwrap();
    let after = router.infer("vgg-nano", nano_in).unwrap();
    assert_eq!(before, after, "swapping one model perturbed another");
}
