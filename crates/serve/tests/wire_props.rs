//! Hostile-input properties of the wire protocol: `Frame::decode_body`
//! and `read_frame` are total — arbitrary prefixes, truncations, and
//! oversized length claims come back as typed `io::Error`s, never
//! panics or unbounded allocations — and every frame kind round-trips
//! bitwise, model field included.

use std::io::Cursor;

use mlcnn_serve::{read_frame, Frame, MAX_FRAME_BYTES};
use mlcnn_tensor::{init, Shape4};
use proptest::prelude::*;

fn model_name(seed: u8) -> String {
    // valid wire names of varying length, deterministic per seed
    let len = 1 + (seed as usize % 32);
    let c = char::from(b'a' + seed % 26);
    std::iter::repeat_n(c, len).collect()
}

fn sample_frames(seed: u8) -> Vec<Frame> {
    let id = 0x0102_0304_0506_0708 ^ u64::from(seed);
    let t = init::uniform(
        Shape4::new(1, 2, 3, 3),
        -1.0,
        1.0,
        &mut init::rng(seed as u64),
    );
    vec![
        Frame::InferRequest {
            id,
            model: model_name(seed),
            input: t.clone(),
        },
        Frame::InferRequest {
            id,
            model: String::new(),
            input: t.clone(),
        },
        Frame::MetricsRequest { id },
        Frame::PublishRequest {
            id,
            model: model_name(seed),
            revision: u64::from(seed) + 1,
        },
        Frame::RollbackRequest {
            id,
            model: model_name(seed),
        },
        Frame::InferOk { id, output: t },
        Frame::MetricsOk {
            id,
            json: format!("{{\"s\":{seed}}}"),
        },
        Frame::AdminOk {
            id,
            model: model_name(seed),
            active: 2,
            previous: 1,
        },
        Frame::Error {
            id,
            message: format!("err {seed}"),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes as a frame body: typed error or frame, no panic.
    #[test]
    fn random_bodies_never_panic(body in proptest::collection::vec(any::<u8>(), 0usize..192)) {
        let _ = Frame::decode_body(&body);
    }

    /// Every frame kind round-trips bitwise through encode → read_frame,
    /// model field included.
    #[test]
    fn all_frames_round_trip(seed in any::<u8>()) {
        for frame in sample_frames(seed) {
            let bytes = frame.encode().unwrap();
            let mut cursor = Cursor::new(bytes);
            let back = read_frame(&mut cursor).unwrap().expect("frame present");
            prop_assert_eq!(back, frame);
        }
    }

    /// Any strict prefix of a valid encoded frame is rejected typed (or
    /// reported as clean EOF at offset 0), never panics, never yields a
    /// frame.
    #[test]
    fn any_prefix_is_rejected(seed in any::<u8>(), cut in any::<u64>()) {
        for frame in sample_frames(seed) {
            let bytes = frame.encode().unwrap();
            let at = (cut as usize) % bytes.len();
            let mut cursor = Cursor::new(&bytes[..at]);
            match read_frame(&mut cursor) {
                Ok(None) => prop_assert_eq!(at, 0, "mid-frame cut reported as clean EOF"),
                Ok(Some(_)) => prop_assert!(false, "prefix decoded to a frame"),
                Err(_) => {}
            }
        }
    }

    /// Flipping any byte of a valid frame never panics; if it still
    /// decodes, it decodes to *some* frame (the protocol carries no
    /// body checksum — corruption detection belongs to the artifact
    /// layer), and an oversized length claim is refused before any
    /// allocation.
    #[test]
    fn mutations_never_panic(seed in any::<u8>(), offset in any::<u64>(), xor in 1u8..=255) {
        for frame in sample_frames(seed) {
            let mut bytes = frame.encode().unwrap();
            let at = (offset as usize) % bytes.len();
            bytes[at] ^= xor;
            let mut cursor = Cursor::new(bytes);
            let _ = read_frame(&mut cursor);
        }
    }

    /// A length prefix beyond `MAX_FRAME_BYTES` is rejected from the
    /// prefix alone — the reader must not try to buffer the claimed
    /// size.
    #[test]
    fn oversized_length_claims_are_refused(extra in 1u32..=1024) {
        let claimed = (MAX_FRAME_BYTES as u32) + extra;
        let mut bytes = claimed.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 32]); // far fewer than claimed
        let mut cursor = Cursor::new(bytes);
        let err = read_frame(&mut cursor).unwrap_err();
        prop_assert!(
            err.to_string().contains("frame"),
            "unexpected error: {err}"
        );
    }
}
