//! Acceptance: packing a model into a `.mlcnn` artifact and loading it
//! back through [`ModelRegistry`] yields an execution plan bitwise
//! identical to compiling the specs directly — for every serving-zoo
//! model at every precision — and corrupted artifacts are rejected when
//! the registry opens, never at request time.

use std::path::PathBuf;
use std::sync::Arc;

use mlcnn_core::Workspace;
use mlcnn_nn::spec::build_network;
use mlcnn_quant::Precision;
use mlcnn_registry::{Artifact, ModelRegistry, RegistryError};
use mlcnn_serve::{serving_zoo, ServeModel, SERVE_SEED};
use mlcnn_tensor::{init, Shape4, Tensor};

/// Scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("mlcnn-rt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn artifact_for(model: &ServeModel, revision: u64, precision: Precision) -> Artifact {
    let mut net = build_network(&model.specs, model.input, SERVE_SEED).unwrap();
    Artifact {
        model: model.name.to_string(),
        revision,
        specs: model.specs.clone(),
        input: model.input,
        precision,
        params: net.export_params(),
    }
}

fn item(shape: Shape4, seed: u64) -> Tensor<f32> {
    init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(seed),
    )
}

/// The headline parity contract: pack → open → plan → forward is
/// bitwise identical to `ServeModel::compile` → forward, for every zoo
/// model at FP32, FP16, and INT8.
#[test]
fn packed_plans_match_direct_compilation_bitwise() {
    let precisions = [Precision::Fp32, Precision::Fp16, Precision::Int8];
    for model in serving_zoo() {
        let scratch = Scratch::new(model.name);
        // one revision per precision so all three coexist in one registry
        for (i, &precision) in precisions.iter().enumerate() {
            let artifact = artifact_for(&model, i as u64 + 1, precision);
            std::fs::write(
                scratch.0.join(artifact.file_name()),
                artifact.encode().unwrap(),
            )
            .unwrap();
        }
        let registry = ModelRegistry::open(&scratch.0).unwrap();
        for (i, &precision) in precisions.iter().enumerate() {
            let (rev, packed) = registry
                .plan(model.name, Some(i as u64 + 1), precision)
                .unwrap();
            assert_eq!(rev, i as u64 + 1);
            // registry plans compile through the shared dedup store; the
            // plan verifier must accept the shared-segment plan unchanged
            packed.verify().unwrap_or_else(|e| {
                panic!(
                    "{} @ {precision:?}: shared plan fails verify: {e}",
                    model.name
                )
            });
            let direct = model.compile(precision).unwrap();
            let mut ws_packed = Workspace::new();
            let mut ws_direct = Workspace::new();
            for seed in 0..3u64 {
                let x = item(model.input, 500 + seed);
                let got = packed.forward(&x, &mut ws_packed).unwrap();
                let want = direct.forward(&x, &mut ws_direct).unwrap();
                assert_eq!(
                    got, want,
                    "{} @ {precision:?}: packed plan diverges from direct compile",
                    model.name
                );
            }
        }
    }
}

/// The registry records each artifact's default precision, and
/// `plan(.., None-ish default)` respects it.
#[test]
fn default_precision_travels_with_the_artifact() {
    let model = serving_zoo().remove(4); // mlp-mini
    let scratch = Scratch::new("defprec");
    let artifact = artifact_for(&model, 1, Precision::Int8);
    std::fs::write(
        scratch.0.join(artifact.file_name()),
        artifact.encode().unwrap(),
    )
    .unwrap();
    let registry = ModelRegistry::open(&scratch.0).unwrap();
    assert_eq!(
        registry.default_precision(model.name, 1).unwrap(),
        Precision::Int8
    );
    let (_, plan) = registry.plan(model.name, None, Precision::Int8).unwrap();
    assert_eq!(plan.precision(), Precision::Int8);
}

/// Corruption is caught when the registry *opens* — with the R001 lint
/// code — and a healthy sibling registry keeps serving requests, so the
/// failure never reaches request time.
#[test]
fn corruption_is_rejected_at_open_not_at_request_time() {
    let model = serving_zoo().remove(4); // mlp-mini
    let artifact = artifact_for(&model, 1, Precision::Fp32);
    let bytes = artifact.encode().unwrap();

    // flip one payload byte: open() must refuse the whole directory
    let bad = Scratch::new("corrupt");
    let mut corrupted = bytes.clone();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0x40;
    std::fs::write(bad.0.join(artifact.file_name()), &corrupted).unwrap();
    let err = ModelRegistry::open(&bad.0).unwrap_err();
    match err {
        RegistryError::Rejected(msg) => {
            assert!(msg.contains("R001"), "want R001 in: {msg}")
        }
        other => panic!("want Rejected(R001), got {other}"),
    }

    // truncation: same gate
    let cut = Scratch::new("trunc");
    std::fs::write(cut.0.join(artifact.file_name()), &bytes[..bytes.len() - 9]).unwrap();
    let err = ModelRegistry::open(&cut.0).unwrap_err();
    assert!(err.to_string().contains("R001"), "{err}");

    // the pristine copy opens and serves
    let good = Scratch::new("good");
    std::fs::write(good.0.join(artifact.file_name()), &bytes).unwrap();
    let registry = ModelRegistry::open(&good.0).unwrap();
    let (_, plan) = registry.plan(model.name, None, Precision::Fp32).unwrap();
    let mut ws = Workspace::new();
    plan.forward(&item(model.input, 1), &mut ws).unwrap();
    let _ = Arc::new(registry); // registries are shareable across threads
}
