//! Property tests for the micro-batching decision core, driven on a
//! simulated clock. The [`Microbatcher`] under test is the exact type the
//! service's batcher thread runs; the simulation models a *responsive*
//! batcher — one that wakes on every arrival and at every window
//! deadline, which is what the condvar + `wait_timeout` loop in
//! `service.rs` implements.
//!
//! Properties (the ISSUE's (a)–(d)):
//! (a) no request waits past `max_wait` before its batch dispatches,
//! (b) no batch exceeds `max_batch`,
//! (c) dispatched items map back to the exact ids pushed, in FIFO order,
//! (d) shutdown drains everything exactly once.

use mlcnn_serve::{BatchPolicy, Microbatcher};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One dispatched batch with the simulated time it left the window.
struct Dispatch {
    at: u64,
    ids: Vec<u64>,
}

/// Run a responsive-batcher simulation: requests arrive at the given
/// inter-arrival gaps; the batcher polls on every arrival and at every
/// deadline in between; `drain_all` fires after the last arrival.
fn simulate(
    policy: BatchPolicy,
    gaps: &[u64],
) -> (Vec<Dispatch>, Vec<Vec<u64>>, BTreeMap<u64, u64>, u64) {
    let mut mb = Microbatcher::new(BatchPolicy {
        max_batch: policy.max_batch.max(1),
        ..policy
    });
    let mut dispatched = Vec::new();
    let mut arrivals = BTreeMap::new();
    let mut now = 0u64;
    for (id, gap) in gaps.iter().enumerate() {
        let id = id as u64;
        let next = now + gap;
        // service the deadlines that elapse before this arrival
        while let Some(d) = mb.next_deadline() {
            if d > next {
                break;
            }
            if let Some(ids) = mb.poll(d) {
                dispatched.push(Dispatch { at: d, ids });
            }
        }
        now = next;
        arrivals.insert(id, now);
        mb.push(id, now);
        // the arrival notify wakes the batcher immediately
        while let Some(ids) = mb.poll(now) {
            dispatched.push(Dispatch { at: now, ids });
        }
    }
    let drained = mb.drain_all();
    assert!(mb.is_empty(), "drain_all left the window non-empty");
    assert!(mb.drain_all().is_empty(), "second drain re-dispatched work");
    (dispatched, drained, arrivals, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn responsive_batcher_upholds_the_four_guarantees(
        max_batch in 1usize..12,
        max_wait in 0u64..5_000,
        gaps in proptest::collection::vec(0u64..2_000, 1..60),
    ) {
        let policy = BatchPolicy { max_batch, max_wait_nanos: max_wait };
        let (dispatched, drained, arrivals, _) = simulate(policy, &gaps);

        // (b) no batch — live or drained — exceeds max_batch
        for d in &dispatched {
            prop_assert!(d.ids.len() <= max_batch, "live batch of {}", d.ids.len());
            prop_assert!(!d.ids.is_empty(), "empty dispatch");
        }
        for b in &drained {
            prop_assert!(b.len() <= max_batch, "drained batch of {}", b.len());
            prop_assert!(!b.is_empty(), "empty drained batch");
        }

        // (a) while the batcher is responsive, nothing outwaits max_wait
        for d in &dispatched {
            for id in &d.ids {
                let waited = d.at - arrivals[id];
                prop_assert!(
                    waited <= max_wait,
                    "request {id} waited {waited} ns > max_wait {max_wait}"
                );
            }
        }

        // (c) + (d): the dispatched ids are exactly the pushed ids, each
        // exactly once, in FIFO order across batches
        let order: Vec<u64> = dispatched
            .iter()
            .flat_map(|d| d.ids.iter().copied())
            .chain(drained.iter().flatten().copied())
            .collect();
        let expected: Vec<u64> = (0..gaps.len() as u64).collect();
        prop_assert_eq!(order, expected, "ids lost, duplicated, or reordered");
    }

    /// A full window dispatches without waiting at all: whenever
    /// `max_batch` requests are pending, the arrival-time poll takes them
    /// immediately, so under a dense burst every batch is full.
    #[test]
    fn bursts_produce_full_batches(
        max_batch in 1usize..10,
        burst in 1usize..8,
    ) {
        let n = max_batch * burst;
        let policy = BatchPolicy { max_batch, max_wait_nanos: u64::MAX / 2 };
        let mut mb = Microbatcher::new(policy);
        let mut batches = Vec::new();
        for id in 0..n as u64 {
            mb.push(id, 0);
            while let Some(b) = mb.poll(0) {
                batches.push(b);
            }
        }
        prop_assert!(mb.is_empty(), "burst left {} pending", mb.len());
        prop_assert_eq!(batches.len(), burst);
        for b in &batches {
            prop_assert_eq!(b.len(), max_batch);
        }
    }
}
