//! Acceptance: `mlcnn-pack` is byte-deterministic. Packing the same
//! `(model, revision, precision, seed)` twice — in-process or through
//! two separate runs of the binary — yields byte-identical `.mlcnn`
//! files, and therefore identical layer content hashes. Determinism is
//! what makes content-addressed dedup useful: two operators packing the
//! same checkpoint independently land on the same hashes and share
//! segments the moment both registries are served from one node.

use std::path::PathBuf;
use std::process::Command;

use mlcnn_quant::Precision;
use mlcnn_registry::Artifact;
use mlcnn_serve::{serving_zoo, SERVE_SEED};

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("mlcnn-packdet-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn packing_twice_is_byte_identical_for_every_zoo_model() {
    for model in serving_zoo() {
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            let once = model.artifact(3, precision, SERVE_SEED).unwrap();
            let twice = model.artifact(3, precision, SERVE_SEED).unwrap();
            let a = once.encode().unwrap();
            let b = twice.encode().unwrap();
            assert_eq!(
                a, b,
                "{} @ {precision:?}: pack is not deterministic",
                model.name
            );
            // and the content hashes — the dedup keys — agree too
            assert_eq!(
                once.layer_hashes().unwrap(),
                twice.layer_hashes().unwrap(),
                "{} @ {precision:?}: layer hashes unstable",
                model.name
            );
            // a different seed must change the bytes (the test would pass
            // vacuously if encode ignored the parameters)
            let other = model.artifact(3, precision, SERVE_SEED + 1).unwrap();
            assert_ne!(
                a,
                other.encode().unwrap(),
                "{}: seed has no effect",
                model.name
            );
        }
    }
}

#[test]
fn pack_binary_runs_are_byte_identical() {
    let bin = env!("CARGO_BIN_EXE_mlcnn-pack");
    let model = "mlp-mini";
    let mut outputs = Vec::new();
    for run in 0..2 {
        let dir = Scratch::new(&format!("bin-{run}"));
        let status = Command::new(bin)
            .args([
                "--out",
                dir.0.to_str().unwrap(),
                "--model",
                model,
                "--revision",
                "2",
                "--precision",
                "int8",
                "--seed",
                "99",
            ])
            .status()
            .expect("spawn mlcnn-pack");
        assert!(status.success(), "mlcnn-pack run {run} failed");
        let bytes = std::fs::read(dir.0.join(format!("{model}@2.mlcnn"))).unwrap();
        // each run's file round-trips through the strict loader
        Artifact::load(&bytes).unwrap();
        outputs.push(bytes);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "two pack runs disagree byte-for-byte"
    );
}
