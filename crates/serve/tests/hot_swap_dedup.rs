//! Acceptance: hot-swapping between revisions that share dedup'd layers
//! keeps every serving guarantee — zero lost requests, every response
//! attributed to exactly one revision — while the content-addressed
//! store shares the unchanged layers' weights between the outgoing and
//! incoming plans, and releases the outgoing revision's *unique*
//! segments only after its endpoint finishes draining.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlcnn_core::Workspace;
use mlcnn_quant::Precision;
use mlcnn_registry::{Artifact, ModelRegistry};
use mlcnn_serve::{find_model, Router, ServeConfig};
use mlcnn_tensor::{init, Shape4, Tensor};

const MODEL: &str = "mlp-mini";

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("mlcnn-swapdedup-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Forward `input` through an artifact compiled directly (no registry,
/// no store) — the attribution reference for one revision.
fn reference(artifact: &Artifact, input: &Tensor<f32>) -> Vec<f32> {
    let plan = artifact.compile(Precision::Fp32).unwrap();
    let mut ws = Workspace::new();
    plan.forward(input, &mut ws).unwrap().as_slice().to_vec()
}

#[test]
fn swap_with_shared_layers_keeps_guarantees_and_frees_only_after_drain() {
    let scratch = Scratch::new("main");
    let zoo = find_model(MODEL).unwrap();

    // revision 1 from the zoo; revision 2 derived copy-on-write with only
    // the final linear layer's parameters replaced
    let rev1 = zoo.artifact(1, Precision::Fp32, 41).unwrap();
    let last = rev1.param_layer_specs().len() - 1;
    let w_shape = rev1.params[last * 2].shape();
    let b_shape = rev1.params[last * 2 + 1].shape();
    let rev2 = rev1
        .with_layer_params(
            2,
            last,
            Tensor::from_fn(w_shape, |_, c, h, w| {
                ((c * 13 + h * 5 + w) % 17) as f32 / 20.0 - 0.4
            }),
            Tensor::from_fn(b_shape, |_, _, _, w| w as f32 / 30.0),
        )
        .unwrap();

    std::fs::write(scratch.0.join(rev1.file_name()), rev1.encode().unwrap()).unwrap();
    let registry = Arc::new(ModelRegistry::open(&scratch.0).unwrap());
    registry.install(&rev2).unwrap();

    // both revisions compiled through the registry share the unchanged
    // layers' segments and differ only in the replaced one
    let (_, p1) = registry.plan(MODEL, Some(1), Precision::Fp32).unwrap();
    let (_, p2) = registry.plan(MODEL, Some(2), Precision::Fp32).unwrap();
    let h1 = p1.param_handles();
    let h2 = p2.param_handles();
    assert_eq!(h1.len(), h2.len());
    let shared_idx: Vec<usize> = (0..h1.len())
        .filter(|&i| h1[i].addr() == h2[i].addr())
        .collect();
    let unique_idx: Vec<usize> = (0..h1.len())
        .filter(|&i| h1[i].addr() != h2[i].addr())
        .collect();
    assert!(!shared_idx.is_empty(), "no segment shared across revisions");
    assert!(
        !unique_idx.is_empty(),
        "every segment shared — test is vacuous"
    );

    // weak probes: one segment only revision 1 uses, one both use
    let weak_unique = h1[unique_idx[0]].downgrade();
    let weak_shared = h1[shared_idx[0]].downgrade();

    let input = init::uniform(
        Shape4::new(1, zoo.input.c, zoo.input.h, zoo.input.w),
        -1.0,
        1.0,
        &mut init::rng(11),
    );
    let ref1 = reference(&rev1, &input);
    let ref2 = reference(&rev2, &input);
    assert_ne!(ref1, ref2, "revisions must be distinguishable");

    // serve revision 1, then publish revision 2 under concurrent load
    let router = Arc::new(Router::new(Arc::clone(&registry), ServeConfig::default()).unwrap());
    assert_eq!(router.active_revision(MODEL).unwrap(), 1);

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 50;
    let mut resolved = 0usize;
    let mut from_rev2 = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let router = Arc::clone(&router);
            let input = input.clone();
            let (ref1, ref2) = (&ref1, &ref2);
            handles.push(s.spawn(move || {
                let mut counts = (0usize, 0usize);
                for _ in 0..PER_CLIENT {
                    // zero lost requests: submit never fails across the swap
                    let (revision, ticket) = router.submit(MODEL, input.clone()).unwrap();
                    let out = ticket.wait().unwrap();
                    // exact attribution: the response matches the revision
                    // the submission was attributed to, never a blend
                    let want = match revision {
                        1 => &ref1[..],
                        2 => &ref2[..],
                        r => panic!("attributed to unknown revision {r}"),
                    };
                    assert_eq!(
                        out.as_slice(),
                        want,
                        "revision {revision} response diverges"
                    );
                    counts.0 += 1;
                    if revision == 2 {
                        counts.1 += 1;
                    }
                }
                counts
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(router.publish(MODEL, 2).unwrap(), (2, 1));
        for h in handles {
            let (n, r2) = h.join().unwrap();
            resolved += n;
            from_rev2 += r2;
        }
    });
    assert_eq!(resolved, CLIENTS * PER_CLIENT, "a submission was lost");
    assert!(from_rev2 > 0, "swap never took effect under load");

    // while anything still references revision 1's plan (our Arc and the
    // plan cache), its unique segment must stay alive
    assert!(
        weak_unique.upgrade().is_some(),
        "segment freed while plan live"
    );

    // release every revision-1 reference we control: our Arcs and the
    // cached plan; the draining endpoint's Arc is the only one left, and
    // it may only disappear after the drain completes
    drop(p1);
    drop(h1);
    registry.cache().evict_revision(MODEL, 1);

    let deadline = Instant::now() + Duration::from_secs(10);
    while weak_unique.upgrade().is_some() {
        assert!(
            Instant::now() < deadline,
            "revision 1's unique segment never released after drain"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // the shared segment survives: revision 2's live plan still owns it
    assert!(
        weak_shared.upgrade().is_some(),
        "shared segment released while revision 2 is serving"
    );
    let out = router.infer(MODEL, input).unwrap();
    assert_eq!(out.as_slice(), &ref2[..], "revision 2 serving disturbed");
}
