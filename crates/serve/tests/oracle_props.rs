//! Property tests for the scheduling cost oracle (the ISSUE's satellite
//! (c)): predicted cost is monotone nondecreasing in batch size, and the
//! oracle's FLOP pricing is *exactly* consistent with `mlcnn_core::opcount`
//! — across the whole serving zoo at FP32/FP16/INT8, and under arbitrary
//! calibration coefficients.

use mlcnn_core::opcount::OpCounts;
use mlcnn_quant::Precision;
use mlcnn_sched::{plan_counts, step_counts, CostOracle};
use mlcnn_serve::serving_zoo;
use proptest::prelude::*;

const ALL_PRECISIONS: [Precision; 3] = [Precision::Fp32, Precision::Fp16, Precision::Int8];

/// Analytic oracle over every zoo model at every precision: the curve the
/// auto-tuner walks never decreases, and every point prices exactly
/// `batch · flops(1)` FLOPs — the opcount module's linear-in-batch law.
#[test]
fn zoo_oracles_are_monotone_and_price_exact_opcounts() {
    for model in serving_zoo() {
        for precision in ALL_PRECISIONS {
            let plan = model.compile(precision).unwrap();
            let view = plan.view();
            let counts = plan_counts(&view);
            assert!(
                counts.flops() > 0,
                "{}@{precision}: a zoo model with zero FLOPs",
                model.name
            );
            // plan_counts is exactly the sum of its per-step counts
            let mut manual = OpCounts::zero();
            for step in &view.steps {
                manual += step_counts(step);
            }
            assert_eq!(counts, manual, "{}@{precision}", model.name);

            let oracle = CostOracle::analytic(&view);
            assert_eq!(oracle.per_item_counts(), counts);
            let curve = oracle.batch_latency_curve(64);
            for (i, pair) in curve.windows(2).enumerate() {
                assert!(
                    pair[1] >= pair[0],
                    "{}@{precision}: curve decreases at batch {}",
                    model.name,
                    i + 2
                );
            }
            for b in 1..=64usize {
                assert_eq!(
                    oracle.flops(b),
                    counts.flops() * b as u64,
                    "{}@{precision}: FLOPs not linear in batch",
                    model.name
                );
            }
        }
    }
}

/// Op counts are a property of the computation, not the datapath: the
/// same model prices identically at every precision.
#[test]
fn per_item_counts_are_precision_invariant() {
    for model in serving_zoo() {
        let reference = plan_counts(&model.compile(Precision::Fp32).unwrap().view());
        for precision in [Precision::Fp16, Precision::Int8] {
            let counts = plan_counts(&model.compile(precision).unwrap().view());
            assert_eq!(counts, reference, "{}@{precision}", model.name);
        }
    }
}

proptest! {
    /// Monotonicity survives *any* calibration outcome: whatever
    /// coefficients a measured warmup produces (including degenerate
    /// zero/negative slopes, which construction clamps), the predicted
    /// service time never decreases with batch size and the single-item
    /// prediction is the floor.
    #[test]
    fn predicted_cost_is_monotone_for_arbitrary_coefficients(
        mults in 0u64..1_000_000,
        adds in 0u64..1_000_000,
        base in -1.0e6f64..1.0e9,
        slope in -1.0f64..1.0e3,
        max_batch in 1usize..128,
    ) {
        let per_item = OpCounts { mults, adds, divs: 0, cmps: 0 };
        let oracle = CostOracle::with_coefficients(per_item, base, slope);
        let curve = oracle.batch_latency_curve(max_batch);
        prop_assert_eq!(curve.len(), max_batch);
        for pair in curve.windows(2) {
            prop_assert!(pair[1] >= pair[0], "curve decreased: {} -> {}", pair[0], pair[1]);
        }
        prop_assert_eq!(curve[0], oracle.min_service_nanos());
        prop_assert_eq!(curve[0], oracle.predicted_service_nanos(1));
    }

    /// FLOP pricing is exactly linear for arbitrary per-item counts:
    /// `flops(b) == b · flops(1)` with saturation, matching opcount's
    /// `flops = mults + adds` convention.
    #[test]
    fn flops_are_exactly_linear_in_batch(
        mults in 0u64..u64::MAX / 1_000,
        adds in 0u64..u64::MAX / 1_000,
        batch in 1usize..512,
    ) {
        let per_item = OpCounts { mults, adds, divs: 3, cmps: 7 };
        let oracle = CostOracle::with_coefficients(per_item, 0.0, 1.0);
        prop_assert_eq!(per_item.flops(), mults + adds, "divs/cmps must not count as FLOPs");
        prop_assert_eq!(
            oracle.flops(batch),
            (mults + adds).saturating_mul(batch as u64)
        );
    }
}
