//! Service-level guarantees: bitwise parity with the bare plan across the
//! serving zoo at every precision, bounded-queue rejection, deadline
//! shedding, and drain-exactly-once shutdown.

use std::sync::Arc;
use std::time::Duration;

use mlcnn_core::Workspace;
use mlcnn_quant::Precision;
use mlcnn_serve::{find_model, serving_zoo, ServeConfig, ServeError, Service, SloSpec};
use mlcnn_tensor::{init, Shape4, Tensor};

fn item(shape: Shape4, seed: u64) -> Tensor<f32> {
    init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(seed),
    )
}

/// The tentpole contract: a response from the batched service is bitwise
/// identical to `ExecutionPlan::forward` on that item alone — at FP32,
/// FP16, *and* INT8 (where coalescing would change the batch-global
/// activation scale, so the service must not coalesce the math).
#[test]
fn service_responses_are_bitwise_identical_to_plan_forward() {
    for model in serving_zoo() {
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            let plan = Arc::new(model.compile(precision).unwrap());
            let cfg = ServeConfig::default()
                .with_precision(precision)
                .with_batching(4, Duration::from_micros(500));
            let svc = Service::spawn(Arc::clone(&plan), cfg).unwrap();
            // references computed alone, one item per forward
            let inputs: Vec<Tensor<f32>> = (0..8).map(|s| item(model.input, 90 + s)).collect();
            let mut ws = Workspace::for_plan(&plan, 1);
            let expected: Vec<Tensor<f32>> = inputs
                .iter()
                .map(|x| plan.forward(x, &mut ws).unwrap())
                .collect();
            // submitted concurrently so the batcher actually coalesces
            std::thread::scope(|s| {
                for (x, want) in inputs.iter().zip(&expected) {
                    let svc = &svc;
                    s.spawn(move || {
                        let got = svc.infer(x.clone()).unwrap();
                        assert_eq!(
                            got, *want,
                            "{}@{precision}: service diverges from plan.forward",
                            model.name
                        );
                    });
                }
            });
            let snap = svc.shutdown();
            assert!(snap.fully_drained(), "{}@{precision}", model.name);
            assert_eq!(snap.completed, 8);
            // classless requests are accounted to the best-effort class
            assert_eq!(snap.best_effort.admitted, 8);
            assert_eq!(snap.best_effort.completed, 8);
            assert_eq!(snap.guaranteed.admitted, 0);
        }
    }
}

#[test]
fn full_queue_rejects_instead_of_growing() {
    let model = find_model("vgg-nano").unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    // nothing dispatches by itself: the window can only fill
    let cfg = ServeConfig::default()
        .with_queue(2)
        .with_batching(64, Duration::from_secs(60));
    let svc = Service::spawn(plan, cfg).unwrap();
    let t1 = svc.submit(item(model.input, 1)).unwrap();
    let t2 = svc.submit(item(model.input, 2)).unwrap();
    let err = svc.submit(item(model.input, 3)).unwrap_err();
    assert_eq!(err, ServeError::QueueFull(2));
    let snap = svc.metrics();
    assert_eq!(snap.rejected_full, 1);
    assert_eq!(snap.queue_depth, 2);
    // shutdown still answers the two admitted requests
    let snap = svc.shutdown();
    assert!(t1.wait().is_ok());
    assert!(t2.wait().is_ok());
    assert!(snap.fully_drained());
    assert_eq!(snap.completed, 2);
}

#[test]
fn expired_deadlines_are_shed_not_executed() {
    let model = find_model("vgg-nano").unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    let cfg = ServeConfig::default().with_batching(8, Duration::from_micros(100));
    let svc = Service::spawn(plan, cfg).unwrap();
    let ticket = svc
        .submit_with_deadline(item(model.input, 5), Some(Duration::ZERO))
        .unwrap();
    assert_eq!(ticket.wait(), Err(ServeError::DeadlineExceeded));
    let live = svc.infer(item(model.input, 6));
    assert!(live.is_ok(), "undeadlined request still served");
    let snap = svc.shutdown();
    assert_eq!(snap.shed_expired, 1);
    assert!(snap.fully_drained(), "shed requests count as drained");
    // the expired classless request lands in the best-effort shed counter
    assert_eq!(snap.best_effort.shed, 1);
    assert_eq!(snap.best_effort.completed, 1);
    assert_eq!(snap.guaranteed.shed, 0);
}

#[test]
fn shutdown_drains_every_pending_request_exactly_once() {
    let model = find_model("vgg-nano").unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    // max_wait far beyond the test: requests are pending *only* until
    // shutdown's drain, which must answer each exactly once
    let cfg = ServeConfig::default()
        .with_queue(64)
        .with_batching(5, Duration::from_secs(60));
    let svc = Service::spawn(Arc::clone(&plan), cfg).unwrap();
    let tickets: Vec<_> = (0..13)
        .map(|s| svc.submit(item(model.input, s)).unwrap())
        .collect();
    let snap = svc.shutdown();
    assert_eq!(snap.submitted, 13);
    assert_eq!(snap.completed, 13);
    assert!(snap.fully_drained());
    assert_eq!(snap.best_effort.admitted, 13);
    assert_eq!(snap.best_effort.completed, 13);
    // drained batches still respect max_batch
    assert!(snap.batch_size_counts.iter().skip(5).all(|&c| c == 0));
    let mut ws = Workspace::for_plan(&plan, 1);
    for (s, t) in tickets.into_iter().enumerate() {
        let got = t.wait().expect("drained response");
        let want = plan.forward(&item(model.input, s as u64), &mut ws).unwrap();
        assert_eq!(got, want, "drained response {s} wrong or misrouted");
    }
}

/// SLO classes end to end: guaranteed work rides the oracle's admission
/// gate, best-effort work is evicted to make room under overload, and
/// every outcome lands in its class's counters — while the drain
/// invariant keeps holding.
#[test]
fn slo_classes_admit_evict_and_account_per_class() {
    let model = find_model("vgg-nano").unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    let budget = Duration::from_millis(250);
    // nothing dispatches by itself: the window can only fill, so the
    // eviction path is deterministic. The SLO arrives per request — the
    // config stays classless, proving the machinery needs no default.
    let cfg = ServeConfig::default()
        .with_queue(2)
        .with_batching(64, Duration::from_secs(60));
    let svc = Service::spawn(Arc::clone(&plan), cfg).unwrap();

    // fill the queue with sheddable best-effort work
    let be1 = svc
        .submit_with_slo(item(model.input, 1), SloSpec::best_effort())
        .unwrap();
    let be2 = svc
        .submit_with_slo(item(model.input, 2), SloSpec::best_effort())
        .unwrap();
    // a guaranteed arrival at the full queue evicts the NEWEST sheddable
    let g = svc
        .submit_with_slo(item(model.input, 3), SloSpec::guaranteed(budget))
        .unwrap();
    assert_eq!(be2.wait(), Err(ServeError::ShedOverload));

    // a guaranteed spec without a budget is refused outright
    let naked = SloSpec {
        class: mlcnn_serve::SloClass::Guaranteed,
        budget: None,
    };
    assert!(matches!(
        svc.submit_with_slo(item(model.input, 4), naked),
        Err(ServeError::BadInput(_))
    ));

    let snap = svc.shutdown();
    assert!(g.wait().is_ok(), "guaranteed request must be served");
    assert!(be1.wait().is_ok(), "surviving best-effort must be served");
    assert!(
        snap.fully_drained(),
        "eviction must not break the drain law"
    );
    assert_eq!(snap.shed_overload, 1);
    assert_eq!(snap.guaranteed.admitted, 1);
    assert_eq!(snap.guaranteed.completed, 1);
    assert_eq!(snap.guaranteed.shed, 0);
    assert_eq!(snap.best_effort.admitted, 2);
    assert_eq!(snap.best_effort.shed, 1);
    assert_eq!(snap.best_effort.completed, 1);
}

#[test]
fn spawn_is_gated_by_the_v_codes() {
    let model = find_model("vgg-nano").unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    let cfg = ServeConfig::default().with_queue(0);
    let err = Service::spawn(Arc::clone(&plan), cfg).unwrap_err();
    assert!(
        matches!(&err, ServeError::Config(m) if m.contains("V001")),
        "{err}"
    );
    let cfg = ServeConfig::default().with_workers(0);
    let err = Service::spawn(Arc::clone(&plan), cfg).unwrap_err();
    assert!(
        matches!(&err, ServeError::Config(m) if m.contains("V003")),
        "{err}"
    );
    // precision mismatch between config and pre-compiled plan
    let cfg = ServeConfig::default().with_precision(Precision::Int8);
    assert!(Service::spawn(Arc::clone(&plan), cfg).is_err());
    // an SLO config is gated by the D codes the same way: a budget
    // inside the micro-batching window can never be met (D002)
    let cfg = ServeConfig::default()
        .with_batching(8, Duration::from_micros(2_000))
        .with_slo(SloSpec::guaranteed(Duration::from_micros(100)));
    let err = Service::spawn(plan, cfg).unwrap_err();
    assert!(
        matches!(&err, ServeError::Config(m) if m.contains("D002")),
        "{err}"
    );
}
