//! Sequential network executor.

use crate::layer::{Layer, ParamRef};
use crate::spec::LayerSpec;
use mlcnn_tensor::{Result, Shape4, Tensor};

/// A sequential stack of layers (branches live inside composite layers).
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Shape4,
    specs: Option<Vec<LayerSpec>>,
}

impl Network {
    /// Assemble from layers. `input_shape` records the expected
    /// single-item input geometry (batch dimension ignored).
    pub fn new(layers: Vec<Box<dyn Layer>>, input_shape: Shape4) -> Self {
        Self {
            layers,
            input_shape,
            specs: None,
        }
    }

    /// Attach the [`LayerSpec`] blueprint this network was built from, so
    /// inference compilers (`FusedNetwork`, the execution plan) can be
    /// derived without the caller re-threading the spec list.
    /// `build_network` does this automatically.
    pub fn with_specs(mut self, specs: Vec<LayerSpec>) -> Self {
        self.specs = Some(specs);
        self
    }

    /// The blueprint recorded by [`Network::with_specs`], if any.
    pub fn specs(&self) -> Option<&[LayerSpec]> {
        self.specs.as_deref()
    }

    /// The input geometry this network was built for.
    pub fn input_shape(&self) -> Shape4 {
        self.input_shape
    }

    /// Number of layers (top level only).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in execution order.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Inference forward pass (no caches kept).
    pub fn forward(&mut self, input: &Tensor<f32>) -> Result<Tensor<f32>> {
        self.forward_mode(input, false)
    }

    /// Forward pass with explicit train/inference mode.
    pub fn forward_mode(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    /// Backward pass; must follow a `forward_mode(_, true)`.
    pub fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// All parameters (recursing into composite layers).
    pub fn params(&mut self) -> Vec<ParamRef<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Total learnable scalar count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Zero all gradient accumulators.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Output shape for a given input shape.
    pub fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let mut s = input;
        for l in &self.layers {
            s = l.out_shape(s)?;
        }
        Ok(s)
    }

    /// Mutable access to a layer by index (used by quantized evaluation to
    /// rewrite conv weights in place).
    pub fn layer_mut(&mut self, idx: usize) -> Option<&mut Box<dyn Layer>> {
        self.layers.get_mut(idx)
    }

    /// Rewrite every weight tensor in the network through `f` (recursing
    /// into composite layers). Used by the quantized-MLCNN evaluation.
    pub fn transform_weights(&mut self, f: &dyn Fn(&Tensor<f32>) -> Tensor<f32>) {
        for l in &mut self.layers {
            l.transform_weights(f);
        }
    }

    /// Snapshot every parameter tensor (in `params()` order).
    pub fn export_params(&mut self) -> Vec<Tensor<f32>> {
        self.params().iter().map(|p| p.value.clone()).collect()
    }

    /// Restore a snapshot taken by [`Network::export_params`] into this
    /// network (which must have the identical architecture).
    ///
    /// # Panics
    /// Panics on parameter-count or shape mismatch — restoring into a
    /// different architecture is a programming error.
    pub fn import_params(&mut self, params: &[Tensor<f32>]) {
        let mut refs = self.params();
        assert_eq!(refs.len(), params.len(), "architecture mismatch");
        for (r, p) in refs.iter_mut().zip(params) {
            assert_eq!(r.value.shape(), p.shape(), "parameter shape mismatch");
            *r.value = p.clone();
        }
    }
}

impl Layer for Network {
    fn name(&self) -> String {
        format!("network[{}]", self.layers.len())
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        self.forward_mode(input, train)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        Network::backward(self, grad_out)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        Network::out_shape(self, input)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        Network::params(self)
    }

    fn param_count(&self) -> usize {
        Network::param_count(self)
    }

    fn transform_weights(&mut self, f: &dyn Fn(&Tensor<f32>) -> Tensor<f32>) {
        Network::transform_weights(self, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_network, LayerSpec};
    use mlcnn_tensor::init;

    fn tiny() -> Network {
        build_network(
            &[
                LayerSpec::Conv {
                    out_ch: 2,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::ReLU,
                LayerSpec::AvgPool {
                    window: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear { out: 3 },
            ],
            Shape4::new(1, 1, 4, 4),
            5,
        )
        .unwrap()
    }

    #[test]
    fn forward_produces_declared_shape() {
        let mut net = tiny();
        let x = init::uniform(Shape4::new(2, 1, 4, 4), -1.0, 1.0, &mut init::rng(1));
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), Shape4::new(2, 1, 1, 3));
        assert_eq!(net.out_shape(x.shape()).unwrap(), y.shape());
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut net = tiny();
        let mut rng = init::rng(2);
        let x = init::uniform(Shape4::new(1, 1, 4, 4), -1.0, 1.0, &mut rng);
        let y0 = net.forward_mode(&x, true).unwrap();
        let mask = init::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let dx = net.backward(&mask).unwrap();
        let eps = 1e-3_f32;
        for probe in 0..16 {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up: f32 = net
                .forward(&xp)
                .unwrap()
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn: f32 = net
                .forward(&xp)
                .unwrap()
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[probe]).abs() < 2e-2,
                "probe {probe}: numeric {numeric} vs analytic {}",
                dx.as_slice()[probe]
            );
        }
    }

    #[test]
    fn params_cover_conv_and_linear() {
        let mut net = tiny();
        // conv W, conv b, fc W, fc b
        assert_eq!(net.params().len(), 4);
        assert_eq!(net.param_count(), (2 * 9 + 2) + (3 * 8 + 3));
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut net = tiny();
        let x = init::uniform(Shape4::new(1, 1, 4, 4), -1.0, 1.0, &mut init::rng(3));
        let y = net.forward_mode(&x, true).unwrap();
        net.backward(&Tensor::full(y.shape(), 1.0f32)).unwrap();
        let dirty: f32 = net.params().iter().map(|p| p.grad.sum().abs()).sum();
        assert!(dirty > 0.0);
        net.zero_grad();
        let clean: f32 = net.params().iter().map(|p| p.grad.sum().abs()).sum();
        assert_eq!(clean, 0.0);
    }

    #[test]
    fn network_nests_as_a_layer() {
        let inner = tiny();
        let mut outer = Network::new(vec![Box::new(inner)], Shape4::new(1, 1, 4, 4));
        let x = init::uniform(Shape4::new(1, 1, 4, 4), -1.0, 1.0, &mut init::rng(4));
        let y = outer.forward(&x).unwrap();
        assert_eq!(y.shape(), Shape4::new(1, 1, 1, 3));
        assert_eq!(outer.param_count(), (2 * 9 + 2) + (3 * 8 + 3));
    }
}
