//! Stochastic gradient descent with momentum and weight decay.

use crate::layer::ParamRef;
use mlcnn_tensor::Tensor;

/// SGD optimizer state.
///
/// Velocity buffers are keyed by parameter order, which is stable for a
/// fixed network; `step` must always be called with the same parameter
/// list layout.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
    velocity: Vec<Tensor<f32>>,
}

impl Sgd {
    /// Create an optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Apply one update step to the given parameters, consuming their
    /// accumulated gradients (gradients are left untouched; call
    /// `zero_grad` afterwards).
    pub fn step(&mut self, params: &mut [ParamRef<'_>]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            debug_assert_eq!(v.shape(), p.value.shape(), "parameter layout changed");
            let lr = self.lr;
            let mu = self.momentum;
            let wd = self.weight_decay;
            let val = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            let vel = v.as_mut_slice();
            for i in 0..val.len() {
                let g = grad[i] + wd * val[i];
                vel[i] = mu * vel[i] + g;
                val[i] -= lr * vel[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::Shape4;

    fn param_pair() -> (Tensor<f32>, Tensor<f32>) {
        (
            Tensor::full(Shape4::hw(1, 2), 1.0f32),
            Tensor::full(Shape4::hw(1, 2), 0.5f32),
        )
    }

    #[test]
    fn plain_sgd_step() {
        let (mut v, mut g) = param_pair();
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.step(&mut [ParamRef {
            value: &mut v,
            grad: &mut g,
        }]);
        assert_eq!(v.as_slice(), &[0.95, 0.95]);
    }

    #[test]
    fn momentum_accumulates() {
        let (mut v, mut g) = param_pair();
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        opt.step(&mut [ParamRef {
            value: &mut v,
            grad: &mut g,
        }]);
        // v1 = 0.5 ; x = 1 - 0.05 = 0.95
        assert!((v.as_slice()[0] - 0.95).abs() < 1e-6);
        opt.step(&mut [ParamRef {
            value: &mut v,
            grad: &mut g,
        }]);
        // v2 = 0.9*0.5 + 0.5 = 0.95 ; x = 0.95 - 0.095 = 0.855
        assert!((v.as_slice()[0] - 0.855).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut v = Tensor::full(Shape4::hw(1, 1), 2.0f32);
        let mut g = Tensor::zeros(Shape4::hw(1, 1));
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        opt.step(&mut [ParamRef {
            value: &mut v,
            grad: &mut g,
        }]);
        // g_eff = 0 + 0.5*2 = 1 ; x = 2 - 0.1 = 1.9
        assert!((v.as_slice()[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn converges_on_a_quadratic() {
        // minimize (x-3)^2: grad = 2(x-3)
        let mut x = Tensor::full(Shape4::hw(1, 1), 0.0f32);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..400 {
            let mut g = x.map(|v| 2.0 * (v - 3.0));
            opt.step(&mut [ParamRef {
                value: &mut x,
                grad: &mut g,
            }]);
        }
        assert!((x.as_slice()[0] - 3.0).abs() < 1e-3, "{}", x.as_slice()[0]);
    }
}
