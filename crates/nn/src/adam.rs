//! Adam optimizer (Kingma & Ba) — the alternative to SGD+momentum for
//! the harder synthetic tasks.

use crate::layer::ParamRef;
use mlcnn_tensor::Tensor;

/// Adam optimizer state.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// L2 weight decay (decoupled, AdamW-style).
    pub weight_decay: f32,
    m: Vec<Tensor<f32>>,
    v: Vec<Tensor<f32>>,
    t: i32,
}

impl Adam {
    /// Create with the canonical defaults (`β1 = 0.9`, `β2 = 0.999`).
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Apply one update step; parameter layout must stay fixed between
    /// calls (as with [`crate::sgd::Sgd`]).
    pub fn step(&mut self, params: &mut [ParamRef<'_>]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t);
        let bias2 = 1.0 - self.beta2.powi(self.t);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let val = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            let m = m.as_mut_slice();
            let v = v.as_mut_slice();
            for i in 0..val.len() {
                let g = grad[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                val[i] -=
                    self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * val[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::Shape4;

    #[test]
    fn converges_on_a_quadratic() {
        let mut x = Tensor::full(Shape4::hw(1, 1), 0.0f32);
        let mut opt = Adam::new(0.1, 0.0);
        for _ in 0..300 {
            let mut g = x.map(|v| 2.0 * (v - 3.0));
            opt.step(&mut [ParamRef {
                value: &mut x,
                grad: &mut g,
            }]);
        }
        assert!((x.as_slice()[0] - 3.0).abs() < 1e-2, "{}", x.as_slice()[0]);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Adam's bias correction makes the very first step ≈ lr in the
        // gradient direction regardless of gradient magnitude.
        for scale in [1e-3_f32, 1.0, 1e3] {
            let mut x = Tensor::full(Shape4::hw(1, 1), 0.0f32);
            let mut g = Tensor::full(Shape4::hw(1, 1), scale);
            let mut opt = Adam::new(0.01, 0.0);
            opt.step(&mut [ParamRef {
                value: &mut x,
                grad: &mut g,
            }]);
            assert!(
                (x.as_slice()[0] + 0.01).abs() < 1e-4,
                "scale {scale}: step {}",
                x.as_slice()[0]
            );
        }
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut x = Tensor::full(Shape4::hw(1, 1), 2.0f32);
        let mut opt = Adam::new(0.1, 0.5);
        let mut g = Tensor::zeros(Shape4::hw(1, 1));
        opt.step(&mut [ParamRef {
            value: &mut x,
            grad: &mut g,
        }]);
        assert!(x.as_slice()[0] < 2.0);
    }

    #[test]
    fn beats_sgd_on_badly_scaled_quadratic() {
        // f(x, y) = x² + 1000·y²: Adam's per-coordinate scaling wins.
        let run_adam = {
            let mut p = Tensor::from_vec(Shape4::hw(1, 2), vec![1.0, 1.0]).unwrap();
            let mut opt = Adam::new(0.05, 0.0);
            for _ in 0..200 {
                let mut g = Tensor::from_vec(
                    Shape4::hw(1, 2),
                    vec![2.0 * p.as_slice()[0], 2000.0 * p.as_slice()[1]],
                )
                .unwrap();
                opt.step(&mut [ParamRef {
                    value: &mut p,
                    grad: &mut g,
                }]);
            }
            p.as_slice()[0].powi(2) + 1000.0 * p.as_slice()[1].powi(2)
        };
        let run_sgd = {
            let mut p = Tensor::from_vec(Shape4::hw(1, 2), vec![1.0, 1.0]).unwrap();
            let mut opt = crate::sgd::Sgd::new(0.0008, 0.0, 0.0); // near stability limit
            for _ in 0..200 {
                let mut g = Tensor::from_vec(
                    Shape4::hw(1, 2),
                    vec![2.0 * p.as_slice()[0], 2000.0 * p.as_slice()[1]],
                )
                .unwrap();
                opt.step(&mut [ParamRef {
                    value: &mut p,
                    grad: &mut g,
                }]);
            }
            p.as_slice()[0].powi(2) + 1000.0 * p.as_slice()[1].powi(2)
        };
        assert!(run_adam < run_sgd, "adam {run_adam} vs sgd {run_sgd}");
    }
}
