//! Binary serialization of trained parameters.
//!
//! A small, versioned, endian-stable format so trained models survive a
//! process restart (the accuracy experiments train once and re-evaluate
//! under several precisions):
//!
//! ```text
//! magic "MLCN"  | u16 version | u32 tensor count
//! per tensor:   u32 n, c, h, w | f32 LE data (n*c*h*w values)
//! ```
//!
//! The format stores *parameters only* — architecture comes from the
//! [`crate::spec::LayerSpec`] list, which is `serde`-serializable
//! separately. Loading validates shapes against the target network.

use crate::network::Network;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mlcnn_tensor::{Shape4, Tensor, TensorError};

const MAGIC: &[u8; 4] = b"MLCN";
const VERSION: u16 = 1;

/// Serialize a network's parameters (in `params()` order).
pub fn save_params(net: &mut Network) -> Bytes {
    let params = net.export_params();
    let mut buf =
        BytesMut::with_capacity(12 + params.iter().map(|t| 16 + 4 * t.len()).sum::<usize>());
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u32(params.len() as u32);
    for t in &params {
        let s = t.shape();
        buf.put_u32(s.n as u32);
        buf.put_u32(s.c as u32);
        buf.put_u32(s.h as u32);
        buf.put_u32(s.w as u32);
        for &v in t.as_slice() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Deserialize parameters into a freshly built network of the same
/// architecture. Fails on magic/version mismatch, truncation, or any
/// shape disagreement.
pub fn load_params(net: &mut Network, data: &[u8]) -> Result<(), TensorError> {
    let mut buf = data;
    let fail = |reason: String| TensorError::BadGeometry { reason };
    if buf.remaining() < 10 {
        return Err(fail("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail(format!("bad magic {magic:?}")));
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(fail(format!("unsupported version {version}")));
    }
    let count = buf.get_u32() as usize;
    // Each tensor needs at least its 16-byte shape header, so a count
    // the remaining bytes cannot possibly hold is hostile — reject it
    // before reserving any memory for it.
    if count > buf.remaining() / 16 {
        return Err(fail(format!(
            "tensor count {count} exceeds what {} remaining bytes can hold",
            buf.remaining()
        )));
    }
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        if buf.remaining() < 16 {
            return Err(fail(format!("truncated shape header for tensor {i}")));
        }
        let dims = [
            buf.get_u32() as usize,
            buf.get_u32() as usize,
            buf.get_u32() as usize,
            buf.get_u32() as usize,
        ];
        // Element count and byte size via checked arithmetic: a header
        // like [u32::MAX; 4] must be a typed error, not an overflow
        // panic or a huge allocation.
        let len = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| fail(format!("tensor {i} shape {dims:?} overflows")))?;
        let byte_len = len
            .checked_mul(4)
            .ok_or_else(|| fail(format!("tensor {i} byte size overflows")))?;
        if buf.remaining() < byte_len {
            return Err(fail(format!(
                "truncated data for tensor {i} (need {byte_len} bytes, have {})",
                buf.remaining()
            )));
        }
        // Only now — with `len` proven to fit inside the buffer — is it
        // safe to allocate for it.
        let shape = Shape4::new(dims[0], dims[1], dims[2], dims[3]);
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(buf.get_f32_le());
        }
        tensors.push(Tensor::from_vec(shape, data)?);
    }
    if buf.has_remaining() {
        return Err(fail(format!("{} trailing bytes", buf.remaining())));
    }
    // validate against the target before mutating anything
    {
        let refs = net.params();
        if refs.len() != tensors.len() {
            return Err(fail(format!(
                "network has {} parameter tensors, file has {}",
                refs.len(),
                tensors.len()
            )));
        }
        for (i, (r, t)) in refs.iter().zip(&tensors).enumerate() {
            if r.value.shape() != t.shape() {
                return Err(TensorError::ShapeMismatch {
                    left: r.value.shape(),
                    right: t.shape(),
                    op: if i % 2 == 0 {
                        "load weights"
                    } else {
                        "load bias"
                    },
                });
            }
        }
    }
    net.import_params(&tensors);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_network, LayerSpec};
    use crate::zoo;
    use mlcnn_tensor::init;

    fn lenet() -> Network {
        build_network(&zoo::lenet5_spec(10), Shape4::new(1, 3, 32, 32), 7).unwrap()
    }

    #[test]
    fn roundtrip_restores_the_exact_function() {
        let mut a = lenet();
        let blob = save_params(&mut a);
        let mut b = build_network(&zoo::lenet5_spec(10), Shape4::new(1, 3, 32, 32), 999).unwrap();
        load_params(&mut b, &blob).unwrap();
        let x = init::uniform(Shape4::new(2, 3, 32, 32), -1.0, 1.0, &mut init::rng(1));
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }

    #[test]
    fn format_size_is_as_specified() {
        let mut net = lenet();
        let blob = save_params(&mut net);
        let expected: usize = 10
            + net
                .export_params()
                .iter()
                .map(|t| 16 + 4 * t.len())
                .sum::<usize>();
        assert_eq!(blob.len(), expected);
        assert_eq!(&blob[0..4], b"MLCN");
    }

    #[test]
    fn rejects_corruption() {
        let mut net = lenet();
        let blob = save_params(&mut net);
        // bad magic
        let mut bad = blob.to_vec();
        bad[0] = b'X';
        assert!(load_params(&mut net, &bad).is_err());
        // truncation
        assert!(load_params(&mut net, &blob[..blob.len() - 5]).is_err());
        // trailing garbage
        let mut long = blob.to_vec();
        long.push(0);
        assert!(load_params(&mut net, &long).is_err());
        // wrong version
        let mut vbad = blob.to_vec();
        vbad[5] = 9;
        assert!(load_params(&mut net, &vbad).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut a = lenet();
        let blob = save_params(&mut a);
        let mut other = build_network(
            &[
                LayerSpec::conv3(4),
                LayerSpec::Flatten,
                LayerSpec::Linear { out: 10 },
            ],
            Shape4::new(1, 3, 32, 32),
            1,
        )
        .unwrap();
        assert!(load_params(&mut other, &blob).is_err());
        // ...and the failed load must not have clobbered `other`
        let x = init::uniform(Shape4::new(1, 3, 32, 32), -1.0, 1.0, &mut init::rng(2));
        assert!(other.forward(&x).is_ok());
    }

    #[test]
    fn composite_networks_serialize_too() {
        let specs = zoo::googlenet_mini_spec(2, 10);
        let input = Shape4::new(1, 3, 32, 32);
        let mut a = build_network(&specs, input, 3).unwrap();
        let blob = save_params(&mut a);
        let mut b = build_network(&specs, input, 555).unwrap();
        load_params(&mut b, &blob).unwrap();
        let x = init::uniform(input, -1.0, 1.0, &mut init::rng(4));
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }
}
