//! # mlcnn-nn
//!
//! A minimal-but-complete trainable CNN framework, built from scratch on
//! `mlcnn-tensor`, plus the model zoo the MLCNN paper evaluates.
//!
//! Two representations of a network live here, serving the paper's two
//! kinds of experiments:
//!
//! 1. **Trainable networks** ([`network::Network`], [`layer::Layer`]) —
//!    real forward/backward/SGD training used for the accuracy experiments
//!    (paper Figs. 3, 4, 12): does reordering ReLU and average pooling
//!    change what a model learns? Composite layers ([`composite`])
//!    provide inception-style parallel branches and DenseNet-style
//!    concatenation without a general graph executor.
//! 2. **Exact layer geometries** ([`zoo::ModelDesc`]) — the published
//!    LeNet-5 / VGG-16 / VGG-19 / GoogLeNet / DenseNet shapes, driving the
//!    op-count and accelerator experiments (Table I, Figs. 13–15) where
//!    only geometry matters.
//!
//! The layer pipeline is described by data ([`spec::LayerSpec`]) and built
//! into layers, so the MLCNN reordering pass in `mlcnn-core` is a pure
//! spec-to-spec transformation that can be inspected and tested.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adam;
pub mod composite;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod network;
pub mod serialize;
pub mod sgd;
pub mod spec;
pub mod train;
pub mod zoo;

pub use layer::Layer;
pub use network::Network;
pub use spec::LayerSpec;
