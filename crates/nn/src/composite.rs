//! Composite layers: inception-style parallel branches and
//! DenseNet-style concatenation.
//!
//! GoogLeNet and DenseNet are not sequential pipelines, but their
//! non-sequential structure is local: an inception module runs a handful
//! of branches on the same input and concatenates channels; a dense block
//! concatenates its input with its output. Modelling those two patterns as
//! *layers that contain sub-networks* keeps the executor sequential (and
//! the MLCNN reordering pass a simple list transformation) while still
//! training genuine branched topologies.

use crate::layer::{Layer, ParamRef};
use crate::network::Network;
use mlcnn_tensor::{Result, Shape4, Tensor, TensorError};

/// Concatenate same-spatial-shape tensors along the channel axis.
pub fn concat_channels(parts: &[Tensor<f32>]) -> Result<Tensor<f32>> {
    let first = parts.first().ok_or_else(|| TensorError::BadGeometry {
        reason: "concat of zero tensors".into(),
    })?;
    let (n, h, w) = (first.shape().n, first.shape().h, first.shape().w);
    let mut total_c = 0;
    for p in parts {
        let s = p.shape();
        if (s.n, s.h, s.w) != (n, h, w) {
            return Err(TensorError::ShapeMismatch {
                left: first.shape(),
                right: s,
                op: "concat_channels",
            });
        }
        total_c += s.c;
    }
    let mut out = Tensor::zeros(Shape4::new(n, total_c, h, w));
    for ni in 0..n {
        let mut c_off = 0;
        for p in parts {
            for ci in 0..p.shape().c {
                out.plane_slice_mut(ni, c_off + ci)
                    .copy_from_slice(p.plane_slice(ni, ci));
            }
            c_off += p.shape().c;
        }
    }
    Ok(out)
}

/// Split a tensor along the channel axis into parts of the given sizes.
pub fn split_channels(t: &Tensor<f32>, sizes: &[usize]) -> Result<Vec<Tensor<f32>>> {
    let s = t.shape();
    let total: usize = sizes.iter().sum();
    if total != s.c {
        return Err(TensorError::BadGeometry {
            reason: format!("split sizes sum {total} != channels {}", s.c),
        });
    }
    let mut out = Vec::with_capacity(sizes.len());
    let mut c_off = 0;
    for &sz in sizes {
        let mut part = Tensor::zeros(Shape4::new(s.n, sz, s.h, s.w));
        for ni in 0..s.n {
            for ci in 0..sz {
                part.plane_slice_mut(ni, ci)
                    .copy_from_slice(t.plane_slice(ni, c_off + ci));
            }
        }
        c_off += sz;
        out.push(part);
    }
    Ok(out)
}

/// Inception-style module: run every branch on the same input, concatenate
/// branch outputs along channels.
pub struct ParallelConcat {
    name: String,
    branches: Vec<Network>,
    cached_branch_channels: Vec<usize>,
}

impl ParallelConcat {
    /// Create from sub-networks (each must preserve spatial extent or all
    /// reduce it identically).
    pub fn new(name: impl Into<String>, branches: Vec<Network>) -> Self {
        Self {
            name: name.into(),
            branches,
            cached_branch_channels: Vec::new(),
        }
    }
}

impl Layer for ParallelConcat {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        let mut outs = Vec::with_capacity(self.branches.len());
        for b in &mut self.branches {
            outs.push(b.forward_mode(input, train)?);
        }
        self.cached_branch_channels = outs.iter().map(|t| t.shape().c).collect();
        concat_channels(&outs)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        if self.cached_branch_channels.is_empty() {
            return Err(TensorError::BadGeometry {
                reason: "parallel-concat backward without cached forward".into(),
            });
        }
        let parts = split_channels(grad_out, &self.cached_branch_channels)?;
        let mut dx: Option<Tensor<f32>> = None;
        for (b, g) in self.branches.iter_mut().zip(parts) {
            let d = b.backward(&g)?;
            dx = Some(match dx {
                None => d,
                Some(acc) => acc.add(&d)?,
            });
        }
        self.cached_branch_channels.clear();
        dx.ok_or_else(|| TensorError::BadGeometry {
            reason: "parallel-concat with zero branches".into(),
        })
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let mut total_c = 0;
        let mut hw = None;
        for b in &self.branches {
            let s = b.out_shape(input)?;
            total_c += s.c;
            match hw {
                None => hw = Some((s.h, s.w)),
                Some(prev) if prev != (s.h, s.w) => {
                    return Err(TensorError::BadGeometry {
                        reason: format!(
                            "branch spatial shapes disagree: {:?} vs {:?}",
                            prev,
                            (s.h, s.w)
                        ),
                    })
                }
                _ => {}
            }
        }
        let (h, w) = hw.ok_or_else(|| TensorError::BadGeometry {
            reason: "parallel-concat with zero branches".into(),
        })?;
        Ok(Shape4::new(input.n, total_c, h, w))
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        self.branches.iter_mut().flat_map(|b| b.params()).collect()
    }

    fn param_count(&self) -> usize {
        self.branches.iter().map(|b| b.param_count()).sum()
    }

    fn transform_weights(&mut self, f: &dyn Fn(&Tensor<f32>) -> Tensor<f32>) {
        for b in &mut self.branches {
            b.transform_weights(f);
        }
    }
}

/// DenseNet-style skip: output = concat(input, inner(input)).
pub struct DenseConcat {
    name: String,
    inner: Network,
    cached_split: Option<(usize, usize)>,
}

impl DenseConcat {
    /// Wrap a sub-network whose output will be concatenated with its input.
    pub fn new(name: impl Into<String>, inner: Network) -> Self {
        Self {
            name: name.into(),
            inner,
            cached_split: None,
        }
    }
}

impl Layer for DenseConcat {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        let inner_out = self.inner.forward_mode(input, train)?;
        self.cached_split = Some((input.shape().c, inner_out.shape().c));
        concat_channels(&[input.clone(), inner_out])
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let (in_c, out_c) = self
            .cached_split
            .take()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "dense-concat backward without cached forward".into(),
            })?;
        let parts = split_channels(grad_out, &[in_c, out_c])?;
        let d_inner = self.inner.backward(&parts[1])?;
        parts[0].add(&d_inner)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let inner = self.inner.out_shape(input)?;
        if (inner.h, inner.w) != (input.h, input.w) {
            return Err(TensorError::BadGeometry {
                reason: "dense-concat requires the inner network to preserve spatial extent".into(),
            });
        }
        Ok(Shape4::new(input.n, input.c + inner.c, input.h, input.w))
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        self.inner.params()
    }

    fn param_count(&self) -> usize {
        self.inner.param_count()
    }

    fn transform_weights(&mut self, f: &dyn Fn(&Tensor<f32>) -> Tensor<f32>) {
        self.inner.transform_weights(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_network, LayerSpec};
    use mlcnn_tensor::init;

    fn conv_branch(seed: u64, in_ch: usize, out_ch: usize, k: usize, pad: usize) -> Network {
        build_network(
            &[LayerSpec::Conv {
                out_ch,
                k,
                stride: 1,
                pad,
            }],
            Shape4::new(1, in_ch, 8, 8),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = Tensor::from_fn(Shape4::new(2, 2, 3, 3), |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        });
        let b = Tensor::from_fn(Shape4::new(2, 3, 3, 3), |n, c, h, w| {
            -((n * 1000 + c * 100 + h * 10 + w) as f32)
        });
        let cat = concat_channels(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(cat.shape(), Shape4::new(2, 5, 3, 3));
        let parts = split_channels(&cat, &[2, 3]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 2));
        let b = Tensor::<f32>::zeros(Shape4::new(1, 1, 3, 3));
        assert!(concat_channels(&[a, b]).is_err());
    }

    #[test]
    fn split_rejects_bad_sizes() {
        let a = Tensor::<f32>::zeros(Shape4::new(1, 4, 2, 2));
        assert!(split_channels(&a, &[1, 2]).is_err());
        assert!(split_channels(&a, &[1, 3]).is_ok());
    }

    #[test]
    fn parallel_concat_forward_stacks_channels() {
        let b1 = conv_branch(1, 3, 4, 1, 0);
        let b2 = conv_branch(2, 3, 2, 3, 1);
        let mut layer = ParallelConcat::new("inc", vec![b1, b2]);
        let x = init::uniform(Shape4::new(2, 3, 8, 8), -1.0, 1.0, &mut init::rng(3));
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y.shape(), Shape4::new(2, 6, 8, 8));
        assert_eq!(layer.out_shape(x.shape()).unwrap(), y.shape());
    }

    #[test]
    fn parallel_concat_gradient_check() {
        let b1 = conv_branch(4, 2, 2, 1, 0);
        let b2 = conv_branch(5, 2, 2, 3, 1);
        let mut layer = ParallelConcat::new("inc", vec![b1, b2]);
        let mut rng = init::rng(6);
        let x = init::uniform(Shape4::new(1, 2, 8, 8), -1.0, 1.0, &mut rng);
        let y0 = layer.forward(&x, true).unwrap();
        let mask = init::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let dx = layer.backward(&mask).unwrap();
        let eps = 1e-3_f32;
        for probe in [0usize, 17, 63, 127] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up: f32 = layer
                .forward(&xp, false)
                .unwrap()
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn: f32 = layer
                .forward(&xp, false)
                .unwrap()
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[probe]).abs() < 2e-2,
                "probe {probe}: numeric {numeric} vs {}",
                dx.as_slice()[probe]
            );
        }
    }

    #[test]
    fn dense_concat_prepends_input_channels() {
        let inner = conv_branch(7, 2, 3, 3, 1);
        let mut layer = DenseConcat::new("dense", inner);
        let x = init::uniform(Shape4::new(1, 2, 8, 8), -1.0, 1.0, &mut init::rng(8));
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y.shape(), Shape4::new(1, 5, 8, 8));
        // first two channels are the input passed through
        for c in 0..2 {
            assert_eq!(y.plane_slice(0, c), x.plane_slice(0, c));
        }
    }

    #[test]
    fn dense_concat_gradient_flows_through_skip_and_inner() {
        let inner = conv_branch(9, 1, 1, 3, 1);
        let mut layer = DenseConcat::new("dense", inner);
        let mut rng = init::rng(10);
        let x = init::uniform(Shape4::new(1, 1, 4, 4), -1.0, 1.0, &mut rng);
        let y0 = layer.forward(&x, true).unwrap();
        let mask = init::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let dx = layer.backward(&mask).unwrap();
        let eps = 1e-3_f32;
        for probe in 0..16 {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up: f32 = layer
                .forward(&xp, false)
                .unwrap()
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn: f32 = layer
                .forward(&xp, false)
                .unwrap()
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[probe]).abs() < 2e-2,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn composite_param_counts_sum_branches() {
        let b1 = conv_branch(1, 3, 4, 1, 0); // 3*1*1*4 + 4 = 16
        let b2 = conv_branch(2, 3, 2, 3, 1); // 3*9*2 + 2 = 56
        let layer = ParallelConcat::new("inc", vec![b1, b2]);
        assert_eq!(layer.param_count(), 16 + 56);
    }
}

/// ResNet-style residual block: output = inner(x) + projector(x), with
/// an identity projector when the shapes already match.
pub struct ResidualAdd {
    name: String,
    inner: Network,
    projector: Option<Network>,
}

impl ResidualAdd {
    /// Create from the residual branch and an optional projection branch
    /// (1×1 strided conv in ResNet's downsampling blocks).
    pub fn new(name: impl Into<String>, inner: Network, projector: Option<Network>) -> Self {
        Self {
            name: name.into(),
            inner,
            projector,
        }
    }
}

impl Layer for ResidualAdd {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        let main = self.inner.forward_mode(input, train)?;
        let skip = match &mut self.projector {
            Some(p) => p.forward_mode(input, train)?,
            None => input.clone(),
        };
        main.add(&skip)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let d_main = self.inner.backward(grad_out)?;
        let d_skip = match &mut self.projector {
            Some(p) => p.backward(grad_out)?,
            None => grad_out.clone(),
        };
        d_main.add(&d_skip)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let main = self.inner.out_shape(input)?;
        let skip = match &self.projector {
            Some(p) => p.out_shape(input)?,
            None => input,
        };
        if main != skip {
            return Err(TensorError::ShapeMismatch {
                left: main,
                right: skip,
                op: "residual add (branch shapes)",
            });
        }
        Ok(main)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        let mut p = self.inner.params();
        if let Some(proj) = &mut self.projector {
            p.extend(proj.params());
        }
        p
    }

    fn param_count(&self) -> usize {
        self.inner.param_count() + self.projector.as_ref().map_or(0, |p| p.param_count())
    }

    fn transform_weights(&mut self, f: &dyn Fn(&Tensor<f32>) -> Tensor<f32>) {
        self.inner.transform_weights(f);
        if let Some(p) = &mut self.projector {
            p.transform_weights(f);
        }
    }
}

#[cfg(test)]
mod residual_tests {
    use super::*;
    use crate::spec::{build_network, LayerSpec};
    use mlcnn_tensor::init;

    fn branch(seed: u64, ch: usize) -> Network {
        build_network(
            &[LayerSpec::conv3(ch), LayerSpec::ReLU, LayerSpec::conv3(ch)],
            Shape4::new(1, ch, 8, 8),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn identity_skip_adds_input() {
        let mut layer = ResidualAdd::new("res", branch(1, 2), None);
        let x = init::uniform(Shape4::new(1, 2, 8, 8), -1.0, 1.0, &mut init::rng(2));
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y.shape(), x.shape());
        // output differs from both the input and the plain branch
        let mut plain = branch(1, 2);
        let main = plain.forward(&x).unwrap();
        assert!(y.approx_eq(&main.add(&x).unwrap(), 1e-5));
    }

    #[test]
    fn projector_reconciles_shapes() {
        // main branch downsamples with stride 2 and doubles channels;
        // projector does the same with a 1x1 conv.
        let input_shape = Shape4::new(1, 2, 8, 8);
        let main = build_network(
            &[LayerSpec::Conv {
                out_ch: 4,
                k: 3,
                stride: 2,
                pad: 1,
            }],
            input_shape,
            3,
        )
        .unwrap();
        let proj = build_network(
            &[LayerSpec::Conv {
                out_ch: 4,
                k: 1,
                stride: 2,
                pad: 0,
            }],
            input_shape,
            4,
        )
        .unwrap();
        let mut layer = ResidualAdd::new("res-down", main, Some(proj));
        assert_eq!(
            layer.out_shape(input_shape).unwrap(),
            Shape4::new(1, 4, 4, 4)
        );
        let x = init::uniform(input_shape, -1.0, 1.0, &mut init::rng(5));
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y.shape(), Shape4::new(1, 4, 4, 4));
    }

    #[test]
    fn mismatched_branches_error() {
        let main = build_network(&[LayerSpec::conv3(4)], Shape4::new(1, 2, 8, 8), 6).unwrap();
        let layer = ResidualAdd::new("bad", main, None);
        assert!(layer.out_shape(Shape4::new(1, 2, 8, 8)).is_err());
    }

    #[test]
    fn gradient_check_through_both_branches() {
        let mut rng = init::rng(7);
        let mut layer = ResidualAdd::new("res", branch(8, 1), None);
        let x = init::uniform(Shape4::new(1, 1, 8, 8), -1.0, 1.0, &mut rng);
        let y0 = layer.forward(&x, true).unwrap();
        let mask = init::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let dx = layer.backward(&mask).unwrap();
        let eps = 1e-3_f32;
        for probe in [0usize, 13, 31, 63] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up: f32 = layer
                .forward(&xp, false)
                .unwrap()
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn: f32 = layer
                .forward(&xp, false)
                .unwrap()
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[probe]).abs() < 2e-2,
                "probe {probe}"
            );
        }
    }
}
