//! Training loop and evaluation harness used by the accuracy experiments
//! (paper Figs. 3, 4, 12).

use crate::loss::{softmax_cross_entropy, top_k_accuracy};
use crate::network::Network;
use crate::sgd::Sgd;
use mlcnn_data::Dataset;
use mlcnn_tensor::Result;

/// Hyperparameters for [`fit`].
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Shuffle seed (re-derived per epoch).
    pub seed: u64,
    /// Multiply the learning rate by this factor every
    /// `lr_decay_every` epochs (1.0 disables).
    pub lr_decay: f32,
    /// Epoch interval for the step decay.
    pub lr_decay_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0,
            lr_decay: 1.0,
            lr_decay_every: 1,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training top-1 accuracy over the epoch.
    pub train_acc: f32,
}

/// Train `net` on `data` in place; returns per-epoch stats.
pub fn fit(net: &mut Network, data: &Dataset, cfg: &TrainConfig) -> Result<Vec<EpochStats>> {
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut data = data.clone();
    for epoch in 0..cfg.epochs {
        if cfg.lr_decay != 1.0 && epoch > 0 && epoch % cfg.lr_decay_every.max(1) == 0 {
            opt.lr *= cfg.lr_decay;
        }
        data.shuffle(cfg.seed.wrapping_add(epoch as u64));
        let mut loss_sum = 0.0;
        let mut hit_sum = 0.0;
        let mut batches = 0usize;
        for batch in data.batches(cfg.batch_size) {
            net.zero_grad();
            let logits = net.forward_mode(&batch.images, true)?;
            let out = softmax_cross_entropy(&logits, &batch.labels)?;
            net.backward(&out.grad)?;
            let mut params = net.params();
            opt.step(&mut params);
            loss_sum += out.loss;
            hit_sum += top_k_accuracy(&logits, &batch.labels, 1) * batch.len() as f32;
            batches += 1;
        }
        history.push(EpochStats {
            epoch,
            loss: loss_sum / batches.max(1) as f32,
            train_acc: hit_sum / data.len().max(1) as f32,
        });
    }
    Ok(history)
}

/// Evaluation result: accuracy at each requested `k`.
#[derive(Debug, Clone)]
pub struct EvalStats {
    /// `(k, accuracy)` pairs in request order.
    pub top_k: Vec<(usize, f32)>,
}

impl EvalStats {
    /// Accuracy at a given `k`, if it was requested.
    pub fn at(&self, k: usize) -> Option<f32> {
        self.top_k.iter().find(|(kk, _)| *kk == k).map(|(_, a)| *a)
    }
}

/// Evaluate top-k accuracies on a dataset.
pub fn evaluate(
    net: &mut Network,
    data: &Dataset,
    ks: &[usize],
    batch_size: usize,
) -> Result<EvalStats> {
    let classes = data.num_classes();
    let mut hits = vec![0.0f32; ks.len()];
    let mut total = 0usize;
    for batch in data.batches(batch_size) {
        let logits = net.forward(&batch.images)?;
        for (i, &k) in ks.iter().enumerate() {
            let k = k.min(classes);
            hits[i] += top_k_accuracy(&logits, &batch.labels, k) * batch.len() as f32;
        }
        total += batch.len();
    }
    Ok(EvalStats {
        top_k: ks
            .iter()
            .zip(hits)
            .map(|(&k, h)| (k, h / total.max(1) as f32))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_network, LayerSpec};
    use mlcnn_data::blobs::{generate, BlobsConfig};
    use mlcnn_tensor::Shape4;

    fn blob_net(classes: usize) -> Network {
        build_network(
            &[
                LayerSpec::Conv {
                    out_ch: 4,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::ReLU,
                LayerSpec::AvgPool {
                    window: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear { out: classes },
            ],
            Shape4::new(1, 1, 8, 8),
            3,
        )
        .unwrap()
    }

    #[test]
    fn training_reduces_loss_and_learns_blobs() {
        let data = generate(BlobsConfig {
            classes: 4,
            per_class: 24,
            noise: 0.2,
            ..Default::default()
        });
        let (train, test) = data.split(0.75);
        let mut net = blob_net(4);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 8,
            lr: 0.05,
            ..Default::default()
        };
        let history = fit(&mut net, &train, &cfg).unwrap();
        assert!(
            history.last().unwrap().loss < history.first().unwrap().loss,
            "loss did not decrease: {history:?}"
        );
        let stats = evaluate(&mut net, &test, &[1, 2], 8).unwrap();
        let top1 = stats.at(1).unwrap();
        assert!(top1 > 0.7, "top-1 {top1} too low; history {history:?}");
        assert!(stats.at(2).unwrap() >= top1, "top-2 must dominate top-1");
    }

    #[test]
    fn evaluate_clamps_k_to_class_count() {
        let data = generate(BlobsConfig {
            classes: 3,
            per_class: 4,
            ..Default::default()
        });
        let mut net = blob_net(3);
        let stats = evaluate(&mut net, &data, &[5], 4).unwrap();
        // k clamped to 3 = always a hit
        assert_eq!(stats.top_k[0].1, 1.0);
    }

    #[test]
    fn fit_is_deterministic_given_seeds() {
        let data = generate(BlobsConfig {
            classes: 2,
            per_class: 8,
            ..Default::default()
        });
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let mut a = blob_net(2);
        let mut b = blob_net(2);
        let ha = fit(&mut a, &data, &cfg).unwrap();
        let hb = fit(&mut b, &data, &cfg).unwrap();
        assert_eq!(ha.last().unwrap().loss, hb.last().unwrap().loss);
    }
}
