//! Data-level network descriptions ([`LayerSpec`]) and the builder that
//! turns them into live trainable networks.
//!
//! Keeping the architecture as plain data is what makes the MLCNN layer
//! reordering pass (in `mlcnn-core`) a testable list transformation
//! instead of surgery on live objects.

use crate::composite::{DenseConcat, ParallelConcat};
use crate::layer::Layer;
use crate::layers::{
    AvgPoolLayer, Conv2dLayer, FlattenLayer, LinearLayer, MaxPoolLayer, ReLULayer, SigmoidLayer,
};
use crate::network::Network;
use mlcnn_tensor::{init, Result, Shape4, TensorError};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Declarative description of one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// 2-D convolution (square kernel). Input channels are inferred.
    Conv {
        /// Output channels.
        out_ch: usize,
        /// Kernel extent.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// ReLU activation.
    ReLU,
    /// Sigmoid activation.
    Sigmoid,
    /// Average pooling.
    AvgPool {
        /// Window extent.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Window extent.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling (window = full spatial extent).
    GlobalAvgPool,
    /// Flatten to a feature vector.
    Flatten,
    /// Fully connected layer. Input features are inferred.
    Linear {
        /// Output features.
        out: usize,
    },
    /// Inception-style module: parallel branches concatenated on channels.
    Inception {
        /// The branch pipelines.
        branches: Vec<Vec<LayerSpec>>,
    },
    /// DenseNet-style block: output = concat(input, inner(input)).
    DenseBlock {
        /// The inner pipeline.
        inner: Vec<LayerSpec>,
    },
    /// Per-channel batch normalization (channel count inferred).
    BatchNorm,
    /// Inverted dropout with drop probability `p` (stored in percent to
    /// keep the spec `Eq`-comparable).
    Dropout {
        /// Drop probability in percent (e.g. 50 = 0.5).
        percent: u8,
    },
    /// ResNet-style residual block: `inner(x) + projector(x)`; an empty
    /// projector is the identity skip.
    Residual {
        /// The residual branch.
        inner: Vec<LayerSpec>,
        /// The projection branch (empty = identity).
        projector: Vec<LayerSpec>,
    },
}

impl LayerSpec {
    /// Convenience constructor for a unit-stride padded 3×3 conv.
    pub fn conv3(out_ch: usize) -> Self {
        LayerSpec::Conv {
            out_ch,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    /// Convenience constructor for a 1×1 conv.
    pub fn conv1(out_ch: usize) -> Self {
        LayerSpec::Conv {
            out_ch,
            k: 1,
            stride: 1,
            pad: 0,
        }
    }
}

/// Propagate an input shape through a spec list, returning the output
/// shape (without instantiating any parameters).
pub fn propagate_shape(specs: &[LayerSpec], input: Shape4) -> Result<Shape4> {
    let mut s = input;
    for spec in specs {
        s = spec_out_shape(spec, s)?;
    }
    Ok(s)
}

fn spec_out_shape(spec: &LayerSpec, s: Shape4) -> Result<Shape4> {
    use LayerSpec::*;
    Ok(match spec {
        Conv {
            out_ch,
            k,
            stride,
            pad,
        } => {
            let g = mlcnn_tensor::ConvGeometry::new(s.h, s.w, *k, *k, *stride, *pad)?;
            Shape4::new(s.n, *out_ch, g.out_h, g.out_w)
        }
        ReLU | Sigmoid => s,
        AvgPool { window, stride } | MaxPool { window, stride } => {
            let g = mlcnn_tensor::PoolGeometry::new(s.h, s.w, *window, *stride)?;
            Shape4::new(s.n, s.c, g.out_h, g.out_w)
        }
        GlobalAvgPool => {
            if s.h != s.w {
                return Err(TensorError::BadGeometry {
                    reason: "global pooling requires square planes".into(),
                });
            }
            Shape4::new(s.n, s.c, 1, 1)
        }
        Flatten => Shape4::new(s.n, 1, 1, s.c * s.h * s.w),
        Linear { out } => Shape4::new(s.n, 1, 1, *out),
        Inception { branches } => {
            let mut total_c = 0;
            let mut hw: Option<(usize, usize)> = None;
            for b in branches {
                let o = propagate_shape(b, s)?;
                total_c += o.c;
                match hw {
                    None => hw = Some((o.h, o.w)),
                    Some(prev) if prev != (o.h, o.w) => {
                        return Err(TensorError::BadGeometry {
                            reason: "inception branches disagree on spatial shape".into(),
                        })
                    }
                    _ => {}
                }
            }
            let (h, w) = hw.ok_or_else(|| TensorError::BadGeometry {
                reason: "inception with no branches".into(),
            })?;
            Shape4::new(s.n, total_c, h, w)
        }
        DenseBlock { inner } => {
            let o = propagate_shape(inner, s)?;
            if (o.h, o.w) != (s.h, s.w) {
                return Err(TensorError::BadGeometry {
                    reason: "dense block inner must preserve spatial extent".into(),
                });
            }
            Shape4::new(s.n, s.c + o.c, s.h, s.w)
        }
        BatchNorm | Dropout { .. } => s,
        Residual { inner, projector } => {
            let main = propagate_shape(inner, s)?;
            let skip = if projector.is_empty() {
                s
            } else {
                propagate_shape(projector, s)?
            };
            if main != skip {
                return Err(TensorError::BadGeometry {
                    reason: format!("residual branch shapes disagree: {main} vs {skip}"),
                });
            }
            main
        }
    })
}

/// Count the learnable parameters a spec list will instantiate for the
/// given input shape.
pub fn param_count(specs: &[LayerSpec], input: Shape4) -> Result<usize> {
    let mut s = input;
    let mut total = 0usize;
    for spec in specs {
        use LayerSpec::*;
        total += match spec {
            Conv { out_ch, k, .. } => out_ch * (s.c * k * k) + out_ch,
            Linear { out } => out * (s.c * s.h * s.w) + out,
            Inception { branches } => {
                let mut t = 0;
                for b in branches {
                    t += param_count(b, s)?;
                }
                t
            }
            DenseBlock { inner } => param_count(inner, s)?,
            BatchNorm => 2 * s.c,
            Residual { inner, projector } => param_count(inner, s)? + param_count(projector, s)?,
            _ => 0,
        };
        s = spec_out_shape(spec, s)?;
    }
    Ok(total)
}

fn build_layer(
    spec: &LayerSpec,
    s: Shape4,
    idx: usize,
    rng: &mut StdRng,
) -> Result<Box<dyn Layer>> {
    use LayerSpec::*;
    Ok(match spec {
        Conv {
            out_ch,
            k,
            stride,
            pad,
        } => Box::new(Conv2dLayer::new(
            format!("conv{idx}"),
            s.c,
            *out_ch,
            *k,
            *stride,
            *pad,
            rng,
        )),
        ReLU => Box::new(ReLULayer::new()),
        Sigmoid => Box::new(SigmoidLayer::new()),
        AvgPool { window, stride } => Box::new(AvgPoolLayer::new(*window, *stride)),
        MaxPool { window, stride } => Box::new(MaxPoolLayer::new(*window, *stride)),
        GlobalAvgPool => Box::new(AvgPoolLayer::new(s.h, s.h)),
        Flatten => Box::new(FlattenLayer::new()),
        Linear { out } => Box::new(LinearLayer::new(
            format!("fc{idx}"),
            s.c * s.h * s.w,
            *out,
            rng,
        )),
        Inception { branches } => {
            let nets = branches
                .iter()
                .map(|b| build_with_rng(b, s, rng))
                .collect::<Result<Vec<_>>>()?;
            Box::new(ParallelConcat::new(format!("inception{idx}"), nets))
        }
        DenseBlock { inner } => {
            let net = build_with_rng(inner, s, rng)?;
            Box::new(DenseConcat::new(format!("dense{idx}"), net))
        }
        BatchNorm => Box::new(crate::layers::BatchNorm2dLayer::new(s.c)),
        Dropout { percent } => Box::new(crate::layers::DropoutLayer::new(
            *percent as f32 / 100.0,
            rng.random_range(0..u64::MAX),
        )),
        Residual { inner, projector } => {
            let main = build_with_rng(inner, s, rng)?;
            let proj = if projector.is_empty() {
                None
            } else {
                Some(build_with_rng(projector, s, rng)?)
            };
            Box::new(crate::composite::ResidualAdd::new(
                format!("residual{idx}"),
                main,
                proj,
            ))
        }
    })
}

fn build_with_rng(specs: &[LayerSpec], input: Shape4, rng: &mut StdRng) -> Result<Network> {
    let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(specs.len());
    let mut s = input;
    for (idx, spec) in specs.iter().enumerate() {
        layers.push(build_layer(spec, s, idx, rng)?);
        s = spec_out_shape(spec, s)?;
    }
    Ok(Network::new(layers, input))
}

/// Build a trainable network from a spec list. `input` fixes the channel
/// count and spatial extent (the batch dimension is ignored); `seed` makes
/// initialization deterministic.
pub fn build_network(specs: &[LayerSpec], input: Shape4, seed: u64) -> Result<Network> {
    let mut rng = init::rng(seed);
    // record the blueprint on the top-level network so downstream compilers
    // (FusedNetwork, ExecutionPlan) can be built straight from it
    build_with_rng(specs, input, &mut rng).map(|net| net.with_specs(specs.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lenet_like() -> Vec<LayerSpec> {
        vec![
            LayerSpec::Conv {
                out_ch: 6,
                k: 5,
                stride: 1,
                pad: 0,
            },
            LayerSpec::ReLU,
            LayerSpec::AvgPool {
                window: 2,
                stride: 2,
            },
            LayerSpec::Flatten,
            LayerSpec::Linear { out: 10 },
        ]
    }

    #[test]
    fn shape_propagation_lenet_like() {
        let s = propagate_shape(&lenet_like(), Shape4::new(1, 3, 32, 32)).unwrap();
        assert_eq!(s, Shape4::new(1, 1, 1, 10));
    }

    #[test]
    fn param_count_matches_instantiated_network() {
        let specs = lenet_like();
        let input = Shape4::new(1, 3, 32, 32);
        let counted = param_count(&specs, input).unwrap();
        let net = build_network(&specs, input, 1).unwrap();
        assert_eq!(counted, net.param_count());
        // conv: 6*(3*25)+6 = 456 ; fc: 10*(6*14*14)+10 = 11770
        assert_eq!(counted, 456 + 10 * (6 * 14 * 14) + 10);
    }

    #[test]
    fn inception_spec_builds_and_propagates() {
        let spec = vec![LayerSpec::Inception {
            branches: vec![
                vec![LayerSpec::conv1(4)],
                vec![LayerSpec::conv1(2), LayerSpec::ReLU, LayerSpec::conv3(6)],
            ],
        }];
        let input = Shape4::new(1, 3, 8, 8);
        let out = propagate_shape(&spec, input).unwrap();
        assert_eq!(out, Shape4::new(1, 10, 8, 8));
        let net = build_network(&spec, input, 2).unwrap();
        assert_eq!(net.out_shape(input).unwrap(), out);
    }

    #[test]
    fn dense_block_spec_adds_channels() {
        let spec = vec![LayerSpec::DenseBlock {
            inner: vec![LayerSpec::conv3(12)],
        }];
        let out = propagate_shape(&spec, Shape4::new(1, 24, 16, 16)).unwrap();
        assert_eq!(out, Shape4::new(1, 36, 16, 16));
    }

    #[test]
    fn dense_block_rejects_spatial_change() {
        let spec = vec![LayerSpec::DenseBlock {
            inner: vec![LayerSpec::Conv {
                out_ch: 4,
                k: 3,
                stride: 2,
                pad: 1,
            }],
        }];
        assert!(propagate_shape(&spec, Shape4::new(1, 8, 16, 16)).is_err());
    }

    #[test]
    fn global_avg_pool_collapses() {
        let spec = vec![LayerSpec::GlobalAvgPool];
        let out = propagate_shape(&spec, Shape4::new(2, 7, 8, 8)).unwrap();
        assert_eq!(out, Shape4::new(2, 7, 1, 1));
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let input = Shape4::new(1, 1, 8, 8);
        let specs = vec![
            LayerSpec::conv3(4),
            LayerSpec::ReLU,
            LayerSpec::Flatten,
            LayerSpec::Linear { out: 2 },
        ];
        let mut a = build_network(&specs, input, 42).unwrap();
        let mut b = build_network(&specs, input, 42).unwrap();
        let x = init::uniform(Shape4::new(2, 1, 8, 8), -1.0, 1.0, &mut init::rng(7));
        let ya = a.forward(&x).unwrap();
        let yb = b.forward(&x).unwrap();
        assert_eq!(ya, yb);
    }

    #[test]
    fn specs_roundtrip_through_serde() {
        let specs = vec![
            LayerSpec::conv3(8),
            LayerSpec::Inception {
                branches: vec![vec![LayerSpec::conv1(2)], vec![LayerSpec::conv3(3)]],
            },
        ];
        let json = serde_json_like(&specs);
        assert!(json.contains("Inception"));
    }

    // serde_json is not in the dependency set; smoke-test the Serialize
    // impl through the debug formatter instead.
    fn serde_json_like(specs: &[LayerSpec]) -> String {
        format!("{specs:?}")
    }
}
