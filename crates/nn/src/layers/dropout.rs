//! Inverted dropout.
//!
//! During training each activation is zeroed with probability `p` and the
//! survivors scaled by `1/(1−p)`, so inference is the identity. The mask
//! is drawn from a layer-owned seeded PRNG, keeping training runs
//! reproducible.

use crate::layer::Layer;
use mlcnn_tensor::{Result, Shape4, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Inverted-dropout layer.
pub struct DropoutLayer {
    p: f32,
    rng: StdRng,
    cached_mask: Option<Tensor<f32>>,
}

impl DropoutLayer {
    /// Create with drop probability `p ∈ [0, 1)` and a mask seed.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)` — a configuration error.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability {p} out of [0,1)");
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            cached_mask: None,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for DropoutLayer {
    fn name(&self) -> String {
        format!("dropout{:.2}", self.p)
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        if !train || self.p == 0.0 {
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(input.shape(), |_, _, _, _| {
            if self.rng.random_range(0.0f32..1.0) < keep {
                scale
            } else {
                0.0
            }
        });
        let out = input.zip_with(&mask, |a, m| a * m)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let mask = self
            .cached_mask
            .take()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "dropout backward without cached forward".into(),
            })?;
        grad_out.zip_with(&mask, |g, m| g * m)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        Ok(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = DropoutLayer::new(0.5, 1);
        let x = Tensor::from_fn(Shape4::hw(4, 4), |_, _, h, w| (h * 4 + w) as f32);
        assert_eq!(d.forward(&x, false).unwrap(), x);
    }

    #[test]
    fn training_preserves_expectation() {
        let mut d = DropoutLayer::new(0.3, 2);
        let x = Tensor::full(Shape4::new(1, 1, 64, 64), 1.0f32);
        let mut total = 0.0;
        let rounds = 50;
        for _ in 0..rounds {
            total += d.forward(&x, true).unwrap().mean();
        }
        let mean = total / rounds as f32;
        assert!((mean - 1.0).abs() < 0.05, "E[dropout(1)] = {mean}");
    }

    #[test]
    fn surviving_values_are_scaled() {
        let mut d = DropoutLayer::new(0.5, 3);
        let x = Tensor::full(Shape4::hw(8, 8), 1.0f32);
        let y = d.forward(&x, true).unwrap();
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6, "unexpected value {v}");
        }
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(dropped > 10 && dropped < 54, "drop count {dropped}");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = DropoutLayer::new(0.5, 4);
        let x = Tensor::full(Shape4::hw(4, 4), 1.0f32);
        let y = d.forward(&x, true).unwrap();
        let g = Tensor::full(Shape4::hw(4, 4), 1.0f32);
        let dx = d.backward(&g).unwrap();
        // gradient flows exactly where activations flowed
        for (a, b) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(a == &0.0, b == &0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = DropoutLayer::new(0.0, 5);
        let x = Tensor::full(Shape4::hw(2, 2), 3.0f32);
        assert_eq!(d.forward(&x, true).unwrap(), x);
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn rejects_certain_drop() {
        let _ = DropoutLayer::new(1.0, 6);
    }
}
