//! Concrete layer implementations.

pub mod act;
pub mod batchnorm;
pub mod conv;
pub mod dropout;
pub mod flatten;
pub mod linear;
pub mod pool;

pub use act::{ReLULayer, SigmoidLayer};
pub use batchnorm::BatchNorm2dLayer;
pub use conv::Conv2dLayer;
pub use dropout::DropoutLayer;
pub use flatten::FlattenLayer;
pub use linear::LinearLayer;
pub use pool::{AvgPoolLayer, MaxPoolLayer};
