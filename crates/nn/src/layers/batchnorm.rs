//! 2-D batch normalization.
//!
//! Normalizes each channel over the batch and spatial dimensions with
//! learnable scale/shift, tracking running statistics for inference —
//! the standard component deep VGG/ResNet training depends on.

use crate::layer::{Layer, ParamRef};
use mlcnn_tensor::{Result, Shape4, Tensor, TensorError};

/// Per-channel batch normalization.
pub struct BatchNorm2dLayer {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor<f32>,
    beta: Tensor<f32>,
    g_grad: Tensor<f32>,
    b_grad: Tensor<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor<f32>,
    inv_std: Vec<f32>,
}

impl BatchNorm2dLayer {
    /// Create for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        let shape = Shape4::new(1, 1, 1, channels);
        Self {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::full(shape, 1.0),
            beta: Tensor::zeros(shape),
            g_grad: Tensor::zeros(shape),
            b_grad: Tensor::zeros(shape),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// Running mean (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2dLayer {
    fn name(&self) -> String {
        format!("batchnorm{}", self.channels)
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        let s = input.shape();
        if s.c != self.channels {
            return Err(TensorError::BadGeometry {
                reason: format!("batchnorm expects {} channels, got {}", self.channels, s.c),
            });
        }
        let per_channel = (s.n * s.h * s.w).max(1) as f32;
        let mut out = Tensor::zeros(s);
        let mut x_hat = Tensor::zeros(s);
        let mut inv_stds = vec![0.0; s.c];
        for (c, inv_std_slot) in inv_stds.iter_mut().enumerate() {
            let (mean, var) = if train {
                let mut sum = 0.0;
                let mut sq = 0.0;
                for n in 0..s.n {
                    for &v in input.plane_slice(n, c) {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / per_channel;
                let var = (sq / per_channel - mean * mean).max(0.0);
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[c], self.running_var[c])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            *inv_std_slot = inv_std;
            let g = self.gamma.as_slice()[c];
            let b = self.beta.as_slice()[c];
            for n in 0..s.n {
                let src = input.plane_slice(n, c).to_vec();
                let xh = x_hat.plane_slice_mut(n, c);
                for (i, &v) in src.iter().enumerate() {
                    xh[i] = (v - mean) * inv_std;
                }
                let dst = out.plane_slice_mut(n, c);
                for (i, &v) in src.iter().enumerate() {
                    dst[i] = g * (v - mean) * inv_std + b;
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                x_hat,
                inv_std: inv_stds,
            });
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let cache = self.cache.take().ok_or_else(|| TensorError::BadGeometry {
            reason: "batchnorm backward without cached forward".into(),
        })?;
        let s = grad_out.shape();
        if s != cache.x_hat.shape() {
            return Err(TensorError::ShapeMismatch {
                left: s,
                right: cache.x_hat.shape(),
                op: "batchnorm backward",
            });
        }
        let m = (s.n * s.h * s.w).max(1) as f32;
        let mut dx = Tensor::zeros(s);
        for c in 0..s.c {
            // accumulate dγ, dβ and the two reduction terms
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for n in 0..s.n {
                let dy = grad_out.plane_slice(n, c);
                let xh = cache.x_hat.plane_slice(n, c);
                for (a, b) in dy.iter().zip(xh) {
                    sum_dy += a;
                    sum_dy_xhat += a * b;
                }
            }
            self.b_grad.as_mut_slice()[c] += sum_dy;
            self.g_grad.as_mut_slice()[c] += sum_dy_xhat;
            let g = self.gamma.as_slice()[c];
            let inv_std = cache.inv_std[c];
            let mean_dy = sum_dy / m;
            let mean_dy_xhat = sum_dy_xhat / m;
            for n in 0..s.n {
                let dy = grad_out.plane_slice(n, c).to_vec();
                let xh = cache.x_hat.plane_slice(n, c).to_vec();
                let out = dx.plane_slice_mut(n, c);
                for i in 0..dy.len() {
                    out[i] = g * inv_std * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
                }
            }
        }
        Ok(dx)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        if input.c != self.channels {
            return Err(TensorError::BadGeometry {
                reason: format!(
                    "batchnorm expects {} channels, got {}",
                    self.channels, input.c
                ),
            });
        }
        Ok(input)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                value: &mut self.gamma,
                grad: &mut self.g_grad,
            },
            ParamRef {
                value: &mut self.beta,
                grad: &mut self.b_grad,
            },
        ]
    }

    fn param_count(&self) -> usize {
        2 * self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::init;

    #[test]
    fn training_forward_normalizes_each_channel() {
        let mut bn = BatchNorm2dLayer::new(2);
        let x = Tensor::from_fn(Shape4::new(4, 2, 3, 3), |n, c, h, w| {
            (c as f32 + 1.0) * 10.0 + (n * 9 + h * 3 + w) as f32 * 0.5
        });
        let y = bn.forward(&x, true).unwrap();
        for c in 0..2 {
            let mut sum = 0.0;
            let mut sq = 0.0;
            for n in 0..4 {
                for &v in y.plane_slice(n, c) {
                    sum += v;
                    sq += v * v;
                }
            }
            let m = 36.0;
            let mean: f32 = sum / m;
            let var = sq / m - mean * mean;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut bn = BatchNorm2dLayer::new(1);
        let x = Tensor::from_fn(Shape4::new(8, 1, 2, 2), |n, _, h, w| {
            5.0 + (n * 4 + h * 2 + w) as f32 * 0.1
        });
        for _ in 0..100 {
            bn.forward(&x, true).unwrap();
        }
        let mean: f32 = x.as_slice().iter().sum::<f32>() / x.len() as f32;
        assert!((bn.running_mean()[0] - mean).abs() < 1e-2);
        assert!(bn.running_var()[0] > 0.0);
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm2dLayer::new(1);
        let x = init::uniform(Shape4::new(4, 1, 4, 4), 3.0, 5.0, &mut init::rng(1));
        for _ in 0..50 {
            bn.forward(&x, true).unwrap();
        }
        // in eval mode a wildly different input is normalized with the
        // *stored* statistics, not its own
        let shifted = x.map(|v| v + 100.0);
        let y = bn.forward(&shifted, false).unwrap();
        assert!(
            y.mean() > 50.0,
            "eval mode must not re-center: {}",
            y.mean()
        );
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm2dLayer::new(2);
        let mut rng = init::rng(3);
        let x = init::uniform(Shape4::new(3, 2, 2, 2), -1.0, 1.0, &mut rng);
        let y0 = bn.forward(&x, true).unwrap();
        let mask = init::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let dx = bn.backward(&mask).unwrap();
        let eps = 1e-3_f32;
        let objective = |bn: &mut BatchNorm2dLayer, x: &Tensor<f32>| -> f32 {
            // train-mode forward so the batch statistics are recomputed,
            // matching what the analytic gradient differentiates through.
            let y = bn.forward(x, true).unwrap();
            bn.cache = None;
            y.as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for probe in [0usize, 5, 11, 17, 23] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up = objective(&mut bn, &xp);
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn = objective(&mut bn, &xp);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[probe]).abs() < 3e-2,
                "probe {probe}: numeric {numeric} vs {}",
                dx.as_slice()[probe]
            );
        }
    }

    #[test]
    fn gamma_beta_gradients_accumulate() {
        let mut bn = BatchNorm2dLayer::new(1);
        let x = init::uniform(Shape4::new(2, 1, 2, 2), -1.0, 1.0, &mut init::rng(4));
        let ones = Tensor::full(x.shape(), 1.0f32);
        bn.forward(&x, true).unwrap();
        bn.backward(&ones).unwrap();
        // dβ = Σ dy = 8
        assert!((bn.b_grad.as_slice()[0] - 8.0).abs() < 1e-5);
        assert_eq!(bn.param_count(), 2);
    }

    #[test]
    fn rejects_channel_mismatch() {
        let mut bn = BatchNorm2dLayer::new(3);
        let x = Tensor::<f32>::zeros(Shape4::new(1, 2, 2, 2));
        assert!(bn.forward(&x, false).is_err());
        assert!(bn.out_shape(x.shape()).is_err());
    }
}
