//! Trainable pooling layers.

use crate::layer::Layer;
use mlcnn_tensor::pool::{avg_pool2d, max_pool2d, pool_geometry};
use mlcnn_tensor::{Result, Shape4, Tensor, TensorError};

/// Average pooling layer.
#[derive(Debug)]
pub struct AvgPoolLayer {
    window: usize,
    stride: usize,
    cached_in_shape: Option<Shape4>,
}

impl AvgPoolLayer {
    /// Create an average pool of `window × window` with the given stride.
    pub fn new(window: usize, stride: usize) -> Self {
        Self {
            window,
            stride,
            cached_in_shape: None,
        }
    }

    /// Window accessor.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Stride accessor.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl Layer for AvgPoolLayer {
    fn name(&self) -> String {
        format!("avgpool{}s{}", self.window, self.stride)
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        if train {
            self.cached_in_shape = Some(input.shape());
        }
        avg_pool2d(input, self.window, self.stride)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let in_shape = self
            .cached_in_shape
            .take()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "avgpool backward without cached forward".into(),
            })?;
        let g = mlcnn_tensor::PoolGeometry::new(in_shape.h, in_shape.w, self.window, self.stride)?;
        let inv_area = 1.0 / g.area() as f32;
        let mut dx = Tensor::zeros(in_shape);
        for n in 0..in_shape.n {
            for c in 0..in_shape.c {
                for oh in 0..g.out_h {
                    for ow in 0..g.out_w {
                        let go = grad_out.at(n, c, oh, ow) * inv_area;
                        for kh in 0..self.window {
                            for kw in 0..self.window {
                                *dx.at_mut(n, c, oh * self.stride + kh, ow * self.stride + kw) +=
                                    go;
                            }
                        }
                    }
                }
            }
        }
        Ok(dx)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let g = mlcnn_tensor::PoolGeometry::new(input.h, input.w, self.window, self.stride)?;
        Ok(Shape4::new(input.n, input.c, g.out_h, g.out_w))
    }
}

/// Max pooling layer (argmax-routed gradient).
#[derive(Debug)]
pub struct MaxPoolLayer {
    window: usize,
    stride: usize,
    cached: Option<(Shape4, Tensor<i32>)>,
}

impl MaxPoolLayer {
    /// Create a max pool of `window × window` with the given stride.
    pub fn new(window: usize, stride: usize) -> Self {
        Self {
            window,
            stride,
            cached: None,
        }
    }
}

impl Layer for MaxPoolLayer {
    fn name(&self) -> String {
        format!("maxpool{}s{}", self.window, self.stride)
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        let out = max_pool2d(input, self.window, self.stride)?;
        if train {
            self.cached = Some((input.shape(), out.argmax));
        }
        Ok(out.values)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let (in_shape, argmax) = self.cached.take().ok_or_else(|| TensorError::BadGeometry {
            reason: "maxpool backward without cached forward".into(),
        })?;
        if grad_out.shape() != argmax.shape() {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.shape(),
                right: argmax.shape(),
                op: "maxpool backward",
            });
        }
        let mut dx = Tensor::zeros(in_shape);
        let out_shape = argmax.shape();
        for n in 0..out_shape.n {
            for c in 0..out_shape.c {
                let plane = dx.plane_slice_mut(n, c);
                for oh in 0..out_shape.h {
                    for ow in 0..out_shape.w {
                        let idx = argmax.at(n, c, oh, ow) as usize;
                        plane[idx] += grad_out.at(n, c, oh, ow);
                    }
                }
            }
        }
        Ok(dx)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let g = pool_geometry(&Tensor::<f32>::zeros(input), self.window, self.stride)?;
        Ok(Shape4::new(input.n, input.c, g.out_h, g.out_w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avgpool_backward_distributes_evenly() {
        let mut l = AvgPoolLayer::new(2, 2);
        let x = Tensor::from_fn(Shape4::hw(4, 4), |_, _, h, w| (h * 4 + w) as f32);
        let y = l.forward(&x, true).unwrap();
        assert_eq!(y.shape(), Shape4::hw(2, 2));
        let g = Tensor::from_vec(Shape4::hw(2, 2), vec![4.0, 8.0, 12.0, 16.0]).unwrap();
        let dx = l.backward(&g).unwrap();
        // each input in window (0,0) receives 4/4 = 1
        assert_eq!(dx.at(0, 0, 0, 0), 1.0);
        assert_eq!(dx.at(0, 0, 1, 1), 1.0);
        assert_eq!(dx.at(0, 0, 0, 2), 2.0);
        assert_eq!(dx.at(0, 0, 3, 3), 4.0);
        // total gradient mass is conserved
        assert_eq!(dx.sum(), g.sum());
    }

    #[test]
    fn avgpool_backward_overlapping_windows_accumulate() {
        let mut l = AvgPoolLayer::new(2, 1);
        let x = Tensor::from_fn(Shape4::hw(3, 3), |_, _, h, w| (h * 3 + w) as f32);
        l.forward(&x, true).unwrap();
        let g = Tensor::full(Shape4::hw(2, 2), 4.0f32);
        let dx = l.backward(&g).unwrap();
        // center cell is in all 4 windows: 4 * (4/4) = 4
        assert_eq!(dx.at(0, 0, 1, 1), 4.0);
        // corner cell is in exactly 1 window
        assert_eq!(dx.at(0, 0, 0, 0), 1.0);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax_only() {
        let mut l = MaxPoolLayer::new(2, 2);
        let x = Tensor::from_vec(Shape4::hw(2, 2), vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let y = l.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[9.0]);
        let dx = l.backward(&Tensor::full(Shape4::hw(1, 1), 5.0f32)).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_numeric_gradient_check() {
        let mut l = MaxPoolLayer::new(2, 2);
        let x = Tensor::from_vec(Shape4::hw(2, 2), vec![0.3, 0.9, -0.2, 0.1]).unwrap();
        l.forward(&x, true).unwrap();
        let dx = l.backward(&Tensor::full(Shape4::hw(1, 1), 1.0f32)).unwrap();
        let eps = 1e-3;
        for probe in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up = max_pool2d(&xp, 2, 2).unwrap().values.as_slice()[0];
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn = max_pool2d(&xp, 2, 2).unwrap().values.as_slice()[0];
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[probe]).abs() < 1e-2,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut a = AvgPoolLayer::new(2, 2);
        let g = Tensor::<f32>::zeros(Shape4::hw(1, 1));
        assert!(a.backward(&g).is_err());
        let mut m = MaxPoolLayer::new(2, 2);
        assert!(m.backward(&g).is_err());
    }

    #[test]
    fn out_shape_matches_forward() {
        let mut l = AvgPoolLayer::new(3, 2);
        let x = Tensor::<f32>::zeros(Shape4::new(2, 3, 9, 9));
        let y = l.forward(&x, false).unwrap();
        assert_eq!(l.out_shape(x.shape()).unwrap(), y.shape());
        assert_eq!(y.shape(), Shape4::new(2, 3, 4, 4));
    }
}
