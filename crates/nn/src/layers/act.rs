//! Activation layers: ReLU and Sigmoid.

use crate::layer::Layer;
use mlcnn_tensor::activation::{relu, relu_mask, sigmoid, sigmoid_grad};
use mlcnn_tensor::{Result, Shape4, Tensor, TensorError};

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct ReLULayer {
    cached_pre: Option<Tensor<f32>>,
}

impl ReLULayer {
    /// Create a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLULayer {
    fn name(&self) -> String {
        "relu".into()
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        if train {
            self.cached_pre = Some(input.clone());
        }
        Ok(relu(input))
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let pre = self
            .cached_pre
            .take()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "ReLU backward without cached forward".into(),
            })?;
        relu_mask(&pre).zip_with(grad_out, |m, g| m * g)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        Ok(input)
    }
}

/// Logistic sigmoid.
#[derive(Debug, Default)]
pub struct SigmoidLayer {
    cached_pre: Option<Tensor<f32>>,
}

impl SigmoidLayer {
    /// Create a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for SigmoidLayer {
    fn name(&self) -> String {
        "sigmoid".into()
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        if train {
            self.cached_pre = Some(input.clone());
        }
        Ok(sigmoid(input))
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let pre = self
            .cached_pre
            .take()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "sigmoid backward without cached forward".into(),
            })?;
        sigmoid_grad(&pre).zip_with(grad_out, |m, g| m * g)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        Ok(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward_routes_gradient() {
        let mut l = ReLULayer::new();
        let x = Tensor::plane(1, 4, vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = l.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Tensor::plane(1, 4, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let dx = l.backward(&g).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_without_forward_is_an_error() {
        let mut l = ReLULayer::new();
        let g = Tensor::plane(1, 1, vec![1.0]).unwrap();
        assert!(l.backward(&g).is_err());
        // and the cache is consumed: a second backward also fails
        let x = Tensor::plane(1, 1, vec![1.0]).unwrap();
        l.forward(&x, true).unwrap();
        l.backward(&g).unwrap();
        assert!(l.backward(&g).is_err());
    }

    #[test]
    fn inference_mode_does_not_cache() {
        let mut l = ReLULayer::new();
        let x = Tensor::plane(1, 1, vec![1.0]).unwrap();
        l.forward(&x, false).unwrap();
        assert!(l.backward(&x).is_err());
    }

    #[test]
    fn sigmoid_gradient_is_finite_and_centered() {
        let mut l = SigmoidLayer::new();
        let x = Tensor::plane(1, 3, vec![-5.0, 0.0, 5.0]).unwrap();
        let _ = l.forward(&x, true).unwrap();
        let g = Tensor::plane(1, 3, vec![1.0, 1.0, 1.0]).unwrap();
        let dx = l.backward(&g).unwrap();
        assert!((dx.as_slice()[1] - 0.25).abs() < 1e-6);
        assert!(dx.as_slice()[0] < 0.01 && dx.as_slice()[2] < 0.01);
    }

    #[test]
    fn sigmoid_numeric_gradient_check() {
        // finite differences against the analytic derivative
        let mut l = SigmoidLayer::new();
        let x0 = 0.37_f32;
        let eps = 1e-3;
        let f = |v: f32| 1.0 / (1.0 + (-v).exp());
        let numeric = (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps);
        let x = Tensor::plane(1, 1, vec![x0]).unwrap();
        l.forward(&x, true).unwrap();
        let dx = l
            .backward(&Tensor::plane(1, 1, vec![1.0]).unwrap())
            .unwrap();
        assert!((dx.as_slice()[0] - numeric).abs() < 1e-4);
    }
}
