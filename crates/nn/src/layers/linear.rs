//! Fully connected (linear) layer.

use crate::layer::{Layer, ParamRef};
use mlcnn_tensor::linalg::{matmul, transpose};
use mlcnn_tensor::shape::Shape2;
use mlcnn_tensor::{init, Result, Shape4, Tensor, TensorError};
use rand::rngs::StdRng;

/// `y = x Wᵀ + b` over flattened features: input `B×1×1×in`, output
/// `B×1×1×out`. Weight is stored `out × in`.
pub struct LinearLayer {
    name: String,
    weight: Tensor<f32>, // 1×1×out×in
    bias: Tensor<f32>,   // 1×1×1×out
    w_grad: Tensor<f32>,
    b_grad: Tensor<f32>,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor<f32>>,
}

impl LinearLayer {
    /// Create with Kaiming-style fan-in initialization.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut StdRng,
    ) -> Self {
        let wshape = Shape4::new(1, 1, out_features, in_features);
        let sigma = (2.0 / in_features as f32).sqrt();
        Self {
            name: name.into(),
            weight: init::normal(wshape, sigma, rng),
            bias: Tensor::zeros(Shape4::new(1, 1, 1, out_features)),
            w_grad: Tensor::zeros(wshape),
            b_grad: Tensor::zeros(Shape4::new(1, 1, 1, out_features)),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for LinearLayer {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        let s = input.shape();
        let feat = s.c * s.h * s.w;
        if feat != self.in_features {
            return Err(TensorError::BadGeometry {
                reason: format!(
                    "linear `{}` expects {} features, got {feat}",
                    self.name, self.in_features
                ),
            });
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        // y (B×out) = x (B×in) · Wᵀ (in×out)
        let w_t = transpose(
            self.weight.as_slice(),
            Shape2::new(self.out_features, self.in_features),
        );
        let mut y = matmul(
            input.as_slice(),
            &w_t,
            s.n,
            self.in_features,
            self.out_features,
        );
        for bi in 0..s.n {
            for (o, bval) in self.bias.as_slice().iter().enumerate() {
                y[bi * self.out_features + o] += *bval;
            }
        }
        Tensor::from_vec(Shape4::new(s.n, 1, 1, self.out_features), y)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "linear backward without cached forward".into(),
            })?;
        let b = input.shape().n;
        if grad_out.shape() != Shape4::new(b, 1, 1, self.out_features) {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.shape(),
                right: Shape4::new(b, 1, 1, self.out_features),
                op: "linear backward",
            });
        }
        // dW (out×in) = dYᵀ (out×B) · x (B×in)
        let dy_t = transpose(grad_out.as_slice(), Shape2::new(b, self.out_features));
        let dw = matmul(
            &dy_t,
            input.as_slice(),
            self.out_features,
            b,
            self.in_features,
        );
        for (acc, g) in self.w_grad.as_mut_slice().iter_mut().zip(dw) {
            *acc += g;
        }
        // db = column sums of dY
        for bi in 0..b {
            for o in 0..self.out_features {
                self.b_grad.as_mut_slice()[o] += grad_out.as_slice()[bi * self.out_features + o];
            }
        }
        // dx (B×in) = dY (B×out) · W (out×in)
        let dx = matmul(
            grad_out.as_slice(),
            self.weight.as_slice(),
            b,
            self.out_features,
            self.in_features,
        );
        Tensor::from_vec(input.shape(), dx)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let feat = input.c * input.h * input.w;
        if feat != self.in_features {
            return Err(TensorError::BadGeometry {
                reason: format!(
                    "linear `{}` expects {} features, got {feat}",
                    self.name, self.in_features
                ),
            });
        }
        Ok(Shape4::new(input.n, 1, 1, self.out_features))
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                value: &mut self.weight,
                grad: &mut self.w_grad,
            },
            ParamRef {
                value: &mut self.bias,
                grad: &mut self.b_grad,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn transform_weights(&mut self, f: &dyn Fn(&Tensor<f32>) -> Tensor<f32>) {
        self.weight = f(&self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = init::rng(1);
        let mut l = LinearLayer::new("fc", 2, 2, &mut rng);
        // overwrite weights for a deterministic check
        l.weight = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        l.bias = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0, 1.0]).unwrap();
        let y = l.forward(&x, false).unwrap();
        // y0 = 1+2+0.5, y1 = 3+4-0.5
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn param_count() {
        let mut rng = init::rng(2);
        let l = LinearLayer::new("fc", 120, 84, &mut rng);
        assert_eq!(l.param_count(), 120 * 84 + 84);
    }

    #[test]
    fn gradient_check() {
        let mut rng = init::rng(3);
        let mut l = LinearLayer::new("fc", 4, 3, &mut rng);
        let x = init::uniform(Shape4::new(2, 1, 1, 4), -1.0, 1.0, &mut rng);
        let y0 = l.forward(&x, true).unwrap();
        let mask = init::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let dx = l.backward(&mask).unwrap();
        let objective = |l: &mut LinearLayer, x: &Tensor<f32>| -> f32 {
            let y = l.forward(x, false).unwrap();
            y.as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-3_f32;
        for probe in 0..8 {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up = objective(&mut l, &xp);
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn = objective(&mut l, &xp);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[probe]).abs() < 1e-2,
                "input grad probe {probe}"
            );
        }
        let wg = l.w_grad.clone();
        for probe in 0..12 {
            let orig = l.weight.as_slice()[probe];
            l.weight.as_mut_slice()[probe] = orig + eps;
            let up = objective(&mut l, &x);
            l.weight.as_mut_slice()[probe] = orig - eps;
            let dn = objective(&mut l, &x);
            l.weight.as_mut_slice()[probe] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - wg.as_slice()[probe]).abs() < 1e-2,
                "weight grad probe {probe}"
            );
        }
    }

    #[test]
    fn accepts_unflattened_spatial_input() {
        // A 1×4×1×1 input has 4 features and should be accepted like
        // 1×1×1×4.
        let mut rng = init::rng(4);
        let mut l = LinearLayer::new("fc", 4, 2, &mut rng);
        let x = Tensor::<f32>::zeros(Shape4::new(1, 4, 1, 1));
        assert!(l.forward(&x, false).is_ok());
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let mut rng = init::rng(5);
        let mut l = LinearLayer::new("fc", 4, 2, &mut rng);
        let x = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 5));
        assert!(l.forward(&x, false).is_err());
        assert!(l.out_shape(x.shape()).is_err());
    }
}
