//! Trainable 2-D convolution.
//!
//! Forward runs im2col + GEMM; backward uses the textbook identities
//! `dW = dY · cols(x)ᵀ`, `db = Σ dY`, `dx = col2im(Wᵀ · dY)`. Batch items
//! are processed in parallel with rayon and the per-item parameter
//! gradients reduced afterwards, so the backward pass is deterministic and
//! race-free.

use crate::layer::{Layer, ParamRef};
use mlcnn_tensor::conv::{conv2d_im2col, conv_geometry};
use mlcnn_tensor::im2col::{col2im, im2col};
use mlcnn_tensor::linalg::{matmul, transpose};
use mlcnn_tensor::shape::Shape2;
use mlcnn_tensor::{init, Result, Shape4, Tensor, TensorError};
use rand::rngs::StdRng;
use rayon::prelude::*;

/// Trainable convolution layer with bias.
pub struct Conv2dLayer {
    name: String,
    weight: Tensor<f32>,
    bias: Tensor<f32>,
    w_grad: Tensor<f32>,
    b_grad: Tensor<f32>,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor<f32>>,
}

impl Conv2dLayer {
    /// Create with Kaiming-initialized weights.
    pub fn new(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Self {
        let wshape = Shape4::new(out_ch, in_ch, k, k);
        let bshape = Shape4::new(1, 1, 1, out_ch);
        Self {
            name: name.into(),
            weight: init::kaiming(wshape, rng),
            bias: Tensor::zeros(bshape),
            w_grad: Tensor::zeros(wshape),
            b_grad: Tensor::zeros(bshape),
            stride,
            pad,
            cached_input: None,
        }
    }

    /// Replace the weights (used by tests and quantized evaluation).
    pub fn set_weight(&mut self, w: Tensor<f32>) -> Result<()> {
        if w.shape() != self.weight.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.weight.shape(),
                right: w.shape(),
                op: "set_weight",
            });
        }
        self.weight = w;
        Ok(())
    }

    /// Borrow the weights.
    pub fn weight(&self) -> &Tensor<f32> {
        &self.weight
    }

    /// Borrow the bias (flat, one per output channel).
    pub fn bias(&self) -> &[f32] {
        self.bias.as_slice()
    }

    /// Stride accessor.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding accessor.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Apply a map to the weights in place (used for fake-quantization).
    pub fn map_weights(&mut self, f: impl Fn(&Tensor<f32>) -> Tensor<f32>) {
        self.weight = f(&self.weight);
    }
}

impl Layer for Conv2dLayer {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        if train {
            self.cached_input = Some(input.clone());
        }
        conv2d_im2col(
            input,
            &self.weight,
            Some(self.bias.as_slice()),
            self.stride,
            self.pad,
        )
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "conv backward without cached forward".into(),
            })?;
        let geom = conv_geometry(&input, &self.weight, self.stride, self.pad)?;
        let ishape = input.shape();
        let wshape = self.weight.shape();
        let m = wshape.n; // out channels
        let k = wshape.c * geom.taps(); // unrolled filter length
        let ncols = geom.out_len();
        if grad_out.shape() != Shape4::new(ishape.n, m, geom.out_h, geom.out_w) {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.shape(),
                right: Shape4::new(ishape.n, m, geom.out_h, geom.out_w),
                op: "conv backward",
            });
        }

        let w_t = transpose(self.weight.as_slice(), Shape2::new(m, k));

        struct ItemGrads {
            dw: Vec<f32>,
            db: Vec<f32>,
            dx: Vec<f32>,
        }

        let per_item: Vec<ItemGrads> = (0..ishape.n)
            .into_par_iter()
            .map(|n| {
                let cols = im2col(&input, n, &geom);
                let dy_start = n * m * ncols;
                let dy = &grad_out.as_slice()[dy_start..dy_start + m * ncols];
                // dW = dY (m×ncols) · colsᵀ (ncols×k)
                let cols_t = transpose(&cols, Shape2::new(k, ncols));
                let dw = matmul(dy, &cols_t, m, ncols, k);
                // db = row sums of dY
                let db: Vec<f32> = (0..m)
                    .map(|mi| dy[mi * ncols..(mi + 1) * ncols].iter().sum())
                    .collect();
                // dx = col2im(Wᵀ (k×m) · dY (m×ncols))
                let dcols = matmul(&w_t, dy, k, m, ncols);
                let dx = col2im(&dcols, wshape.c, &geom);
                ItemGrads { dw, db, dx }
            })
            .collect();

        let mut dx_data = Vec::with_capacity(ishape.len());
        for (n, item) in per_item.iter().enumerate() {
            debug_assert_eq!(n * item.dx.len(), dx_data.len());
            dx_data.extend_from_slice(&item.dx);
            for (acc, &g) in self.w_grad.as_mut_slice().iter_mut().zip(&item.dw) {
                *acc += g;
            }
            for (acc, &g) in self.b_grad.as_mut_slice().iter_mut().zip(&item.db) {
                *acc += g;
            }
        }
        Tensor::from_vec(ishape, dx_data)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let wshape = self.weight.shape();
        if input.c != wshape.c {
            return Err(TensorError::ShapeMismatch {
                left: input,
                right: wshape,
                op: "conv out_shape",
            });
        }
        let geom = mlcnn_tensor::ConvGeometry::new(
            input.h,
            input.w,
            wshape.h,
            wshape.w,
            self.stride,
            self.pad,
        )?;
        Ok(Shape4::new(input.n, wshape.n, geom.out_h, geom.out_w))
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                value: &mut self.weight,
                grad: &mut self.w_grad,
            },
            ParamRef {
                value: &mut self.bias,
                grad: &mut self.b_grad,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn transform_weights(&mut self, f: &dyn Fn(&Tensor<f32>) -> Tensor<f32>) {
        self.weight = f(&self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(in_ch: usize, out_ch: usize, k: usize, stride: usize, pad: usize) -> Conv2dLayer {
        let mut rng = init::rng(7);
        Conv2dLayer::new("c", in_ch, out_ch, k, stride, pad, &mut rng)
    }

    #[test]
    fn forward_shape_and_param_count() {
        let mut l = layer(3, 8, 3, 1, 1);
        assert_eq!(l.param_count(), 8 * 3 * 3 * 3 + 8);
        let x = Tensor::zeros(Shape4::new(2, 3, 8, 8));
        let y = l.forward(&x, false).unwrap();
        assert_eq!(y.shape(), Shape4::new(2, 8, 8, 8));
        assert_eq!(l.out_shape(x.shape()).unwrap(), y.shape());
    }

    /// Numeric gradient check of every parameter and the input, on a tiny
    /// problem. This is the strongest correctness guarantee we have for
    /// the whole training substrate.
    #[test]
    fn gradient_check() {
        let mut rng = init::rng(11);
        let mut l = Conv2dLayer::new("c", 2, 3, 2, 1, 0, &mut rng);
        let x = init::uniform(Shape4::new(2, 2, 4, 4), -1.0, 1.0, &mut rng);
        // scalar objective: sum of outputs weighted by a fixed random mask
        let y0 = l.forward(&x, true).unwrap();
        let mask = init::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let dx = l.backward(&mask).unwrap();

        let objective = |l: &mut Conv2dLayer, x: &Tensor<f32>| -> f32 {
            let y = l.forward(x, false).unwrap();
            y.as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-3_f32;

        // input gradient
        for probe in [0usize, 7, 23, 63] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up = objective(&mut l, &xp);
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn = objective(&mut l, &xp);
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = dx.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "input grad at {probe}: numeric {numeric} vs analytic {analytic}"
            );
        }

        // weight gradient
        let w_grad = l.w_grad.clone();
        for probe in [0usize, 5, 11, 23] {
            let orig = l.weight.as_slice()[probe];
            l.weight.as_mut_slice()[probe] = orig + eps;
            let up = objective(&mut l, &x);
            l.weight.as_mut_slice()[probe] = orig - eps;
            let dn = objective(&mut l, &x);
            l.weight.as_mut_slice()[probe] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = w_grad.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "weight grad at {probe}: numeric {numeric} vs analytic {analytic}"
            );
        }

        // bias gradient
        let b_grad = l.b_grad.clone();
        for probe in 0..3 {
            let orig = l.bias.as_slice()[probe];
            l.bias.as_mut_slice()[probe] = orig + eps;
            let up = objective(&mut l, &x);
            l.bias.as_mut_slice()[probe] = orig - eps;
            let dn = objective(&mut l, &x);
            l.bias.as_mut_slice()[probe] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = b_grad.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "bias grad at {probe}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_with_stride_and_padding() {
        let mut rng = init::rng(13);
        let mut l = Conv2dLayer::new("c", 1, 2, 3, 2, 1, &mut rng);
        let x = init::uniform(Shape4::new(1, 1, 5, 5), -1.0, 1.0, &mut rng);
        let y0 = l.forward(&x, true).unwrap();
        let mask = init::uniform(y0.shape(), -1.0, 1.0, &mut rng);
        let dx = l.backward(&mask).unwrap();
        let eps = 1e-3_f32;
        let objective = |l: &mut Conv2dLayer, x: &Tensor<f32>| -> f32 {
            let y = l.forward(x, false).unwrap();
            y.as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for probe in [0usize, 6, 12, 24] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let up = objective(&mut l, &xp);
            xp.as_mut_slice()[probe] -= 2.0 * eps;
            let dn = objective(&mut l, &xp);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[probe]).abs() < 2e-2,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = init::rng(17);
        let mut l = Conv2dLayer::new("c", 1, 1, 2, 1, 0, &mut rng);
        let x = init::uniform(Shape4::new(1, 1, 3, 3), -1.0, 1.0, &mut rng);
        let ones = Tensor::full(Shape4::new(1, 1, 2, 2), 1.0f32);
        l.forward(&x, true).unwrap();
        l.backward(&ones).unwrap();
        let g1 = l.w_grad.clone();
        l.forward(&x, true).unwrap();
        l.backward(&ones).unwrap();
        assert!(l.w_grad.approx_eq(&g1.scale(2.0), 1e-5));
        l.zero_grad();
        assert_eq!(l.w_grad.sum(), 0.0);
        assert_eq!(l.b_grad.sum(), 0.0);
    }

    #[test]
    fn backward_rejects_wrong_grad_shape() {
        let mut l = layer(1, 1, 2, 1, 0);
        let x = Tensor::zeros(Shape4::new(1, 1, 4, 4));
        l.forward(&x, true).unwrap();
        let bad = Tensor::zeros(Shape4::new(1, 1, 2, 2));
        assert!(l.backward(&bad).is_err());
    }

    #[test]
    fn set_weight_validates_shape() {
        let mut l = layer(1, 1, 2, 1, 0);
        assert!(l.set_weight(Tensor::zeros(Shape4::new(1, 1, 2, 2))).is_ok());
        assert!(l
            .set_weight(Tensor::zeros(Shape4::new(1, 1, 3, 3)))
            .is_err());
    }
}
