//! Flatten layer: `B×C×H×W → B×1×1×(C·H·W)`.

use crate::layer::Layer;
use mlcnn_tensor::{Result, Shape4, Tensor, TensorError};

/// Reshape the spatial feature maps into a feature vector per batch item.
#[derive(Debug, Default)]
pub struct FlattenLayer {
    cached_in_shape: Option<Shape4>,
}

impl FlattenLayer {
    /// Create a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for FlattenLayer {
    fn name(&self) -> String {
        "flatten".into()
    }

    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>> {
        if train {
            self.cached_in_shape = Some(input.shape());
        }
        let s = input.shape();
        input
            .clone()
            .reshape(Shape4::new(s.n, 1, 1, s.c * s.h * s.w))
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let in_shape = self
            .cached_in_shape
            .take()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "flatten backward without cached forward".into(),
            })?;
        grad_out.clone().reshape(in_shape)
    }

    fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        Ok(Shape4::new(input.n, 1, 1, input.c * input.h * input.w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut l = FlattenLayer::new();
        let x = Tensor::from_fn(Shape4::new(2, 3, 2, 2), |n, c, h, w| {
            (n * 100 + c * 10 + h * 2 + w) as f32
        });
        let y = l.forward(&x, true).unwrap();
        assert_eq!(y.shape(), Shape4::new(2, 1, 1, 12));
        let dx = l.backward(&y).unwrap();
        assert_eq!(dx, x);
    }

    #[test]
    fn flatten_preserves_batch_separation() {
        let mut l = FlattenLayer::new();
        let x = Tensor::from_fn(Shape4::new(2, 1, 1, 3), |n, _, _, w| (n * 10 + w) as f32);
        let y = l.forward(&x, false).unwrap();
        assert_eq!(y.at(0, 0, 0, 2), 2.0);
        assert_eq!(y.at(1, 0, 0, 0), 10.0);
    }
}
