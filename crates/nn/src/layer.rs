//! The [`Layer`] trait: the contract every trainable building block obeys.

use mlcnn_tensor::{Result, Shape4, Tensor};

/// A mutable view of one parameter tensor and its gradient accumulator.
pub struct ParamRef<'a> {
    /// The parameter values.
    pub value: &'a mut Tensor<f32>,
    /// The gradient accumulated by the most recent backward pass.
    pub grad: &'a mut Tensor<f32>,
}

/// A trainable (or stateless) network layer.
///
/// The forward/backward protocol is the classic one: `forward` caches
/// whatever it needs, `backward` consumes the cache, accumulates parameter
/// gradients and returns the gradient with respect to its input. Layers
/// are used strictly in forward-then-backward pairs by
/// [`crate::network::Network`].
pub trait Layer: Send {
    /// Human-readable layer name (used in experiment reports).
    fn name(&self) -> String;

    /// Run the layer. `train` enables behaviour needed only for a
    /// subsequent backward pass (activation caching).
    fn forward(&mut self, input: &Tensor<f32>, train: bool) -> Result<Tensor<f32>>;

    /// Back-propagate `grad_out` (gradient w.r.t. this layer's output),
    /// returning the gradient w.r.t. its input. Must be preceded by a
    /// `forward(_, true)` call.
    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>>;

    /// Output shape produced for a given input shape, without running.
    fn out_shape(&self, input: Shape4) -> Result<Shape4>;

    /// Mutable access to all parameters and their gradients (empty for
    /// stateless layers).
    fn params(&mut self) -> Vec<ParamRef<'_>> {
        Vec::new()
    }

    /// Number of learnable scalars.
    fn param_count(&self) -> usize {
        0
    }

    /// Zero all gradient accumulators.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.grad.map_inplace(|_| 0.0);
        }
    }

    /// Rewrite weight tensors through `f` (e.g. fake-quantization).
    /// Biases are left untouched, matching the paper's DoReFa setup which
    /// quantizes weights and activations. Stateless layers ignore this.
    fn transform_weights(&mut self, f: &dyn Fn(&Tensor<f32>) -> Tensor<f32>) {
        let _ = f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::act::ReLULayer;

    #[test]
    fn default_param_impls_are_empty() {
        let mut l = ReLULayer::new();
        assert_eq!(l.param_count(), 0);
        assert!(l.params().is_empty());
        l.zero_grad(); // no-op, must not panic
    }
}
