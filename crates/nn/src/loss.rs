//! Softmax cross-entropy loss and classification metrics.

use mlcnn_tensor::activation::softmax_rows;
use mlcnn_tensor::{Result, Tensor, TensorError};

/// Loss value and the gradient w.r.t. the logits.
pub struct LossOut {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits (`(softmax − onehot)/B`).
    pub grad: Tensor<f32>,
}

/// Softmax cross-entropy over `B×1×1×C` logits.
pub fn softmax_cross_entropy(logits: &Tensor<f32>, labels: &[usize]) -> Result<LossOut> {
    let s = logits.shape();
    let classes = s.c * s.h * s.w;
    if labels.len() != s.n {
        return Err(TensorError::BadGeometry {
            reason: format!("{} labels for batch of {}", labels.len(), s.n),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(TensorError::BadGeometry {
            reason: format!("label {bad} out of range for {classes} classes"),
        });
    }
    let probs = softmax_rows(logits);
    let mut loss = 0.0_f32;
    let mut grad = probs.clone();
    let inv_b = 1.0 / s.n as f32;
    for (n, &label) in labels.iter().enumerate() {
        let row = &mut grad.as_mut_slice()[n * classes..(n + 1) * classes];
        loss -= row[label].max(1e-12).ln();
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_b;
        }
    }
    Ok(LossOut {
        loss: loss * inv_b,
        grad,
    })
}

/// Fraction of items whose true label is among the `k` highest logits.
pub fn top_k_accuracy(logits: &Tensor<f32>, labels: &[usize], k: usize) -> f32 {
    let s = logits.shape();
    let classes = s.c * s.h * s.w;
    assert_eq!(labels.len(), s.n);
    assert!(k >= 1 && k <= classes);
    let mut hits = 0usize;
    for (n, &label) in labels.iter().enumerate() {
        let row = &logits.as_slice()[n * classes..(n + 1) * classes];
        let target = row[label];
        // count how many classes strictly beat the target score
        let better = row.iter().filter(|&&v| v > target).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f32 / s.n.max(1) as f32
}

/// Index of the largest logit per item.
pub fn argmax_rows(logits: &Tensor<f32>) -> Vec<usize> {
    let s = logits.shape();
    let classes = s.c * s.h * s.w;
    (0..s.n)
        .map(|n| {
            let row = &logits.as_slice()[n * classes..(n + 1) * classes];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::Shape4;

    #[test]
    fn loss_is_low_for_confident_correct_prediction() {
        let logits = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![10.0, -10.0, -10.0]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(out.loss < 1e-3, "loss {}", out.loss);
        let wrong = softmax_cross_entropy(&logits, &[1]).unwrap();
        assert!(wrong.loss > 5.0);
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::<f32>::zeros(Shape4::new(2, 1, 1, 10));
        let out = softmax_cross_entropy(&logits, &[3, 7]).unwrap();
        assert!((out.loss - (10.0_f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_item() {
        let logits = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![0.5, -1.0, 2.0, 0.0]).unwrap();
        let out = softmax_cross_entropy(&logits, &[2]).unwrap();
        let sum: f32 = out.grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6);
        // gradient is negative only at the true label
        assert!(out.grad.as_slice()[2] < 0.0);
        for i in [0usize, 1, 3] {
            assert!(out.grad.as_slice()[i] > 0.0);
        }
    }

    #[test]
    fn numeric_gradient_check() {
        let base = vec![0.3, -0.7, 1.1, 0.2];
        let labels = [2usize];
        let eps = 1e-3_f32;
        let logits = Tensor::from_vec(Shape4::new(1, 1, 1, 4), base.clone()).unwrap();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        for probe in 0..4 {
            let mut up = base.clone();
            up[probe] += eps;
            let lu = softmax_cross_entropy(
                &Tensor::from_vec(Shape4::new(1, 1, 1, 4), up).unwrap(),
                &labels,
            )
            .unwrap()
            .loss;
            let mut dn = base.clone();
            dn[probe] -= eps;
            let ld = softmax_cross_entropy(
                &Tensor::from_vec(Shape4::new(1, 1, 1, 4), dn).unwrap(),
                &labels,
            )
            .unwrap()
            .loss;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - out.grad.as_slice()[probe]).abs() < 1e-3,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn rejects_bad_labels_and_counts() {
        let logits = Tensor::<f32>::zeros(Shape4::new(2, 1, 1, 3));
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 5]).is_err());
    }

    #[test]
    fn top_k_accuracy_ordering() {
        let logits = Tensor::from_vec(
            Shape4::new(2, 1, 1, 4),
            vec![
                0.1, 0.9, 0.5, 0.2, // item 0: ranking 1,2,3,0
                1.0, 0.0, -1.0, 0.5, // item 1: ranking 0,3,1,2
            ],
        )
        .unwrap();
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 1), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[2, 3], 1), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[2, 3], 2), 1.0);
        // item 0's label 0 ranks 4th, item 1's label 2 ranks 4th: both miss
        assert_eq!(top_k_accuracy(&logits, &[0, 2], 3), 0.0);
        // label 3 ranks 3rd for item 0, label 1 ranks 3rd for item 1
        assert_eq!(top_k_accuracy(&logits, &[3, 1], 3), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[0, 2], 4), 1.0);
    }

    #[test]
    fn argmax_rows_matches_top1() {
        let logits = Tensor::from_vec(
            Shape4::new(2, 1, 1, 3),
            vec![0.1, 0.9, 0.5, -1.0, -2.0, -0.5],
        )
        .unwrap();
        assert_eq!(argmax_rows(&logits), vec![1, 2]);
    }
}
