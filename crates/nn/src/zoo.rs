//! Model zoo: the CNNs the MLCNN paper evaluates.
//!
//! Two families of artifacts:
//!
//! * **Exact layer geometries** ([`ModelDesc`]) of LeNet-5, VGG-16, VGG-19,
//!   GoogLeNet and DenseNet-121 adapted to 3×32×32 (CIFAR-scale) inputs —
//!   the paper's Table I population and the workloads of Figs. 13–15.
//!   Only geometry matters for those experiments, so these carry no
//!   weights.
//! * **Trainable reduced-width variants** (`*_spec` functions) used for the
//!   accuracy experiments (Figs. 3/4/12), where full-size VGG/GoogLeNet
//!   training is out of scope but the architectural motifs (conv→ReLU→
//!   avg-pool blocks, inception branches, dense connectivity, transition
//!   layers) must be present for the reordering question to be meaningful.
//!
//! Fused-layer marking: a conv layer is annotated with the pooling that
//! consumes its output (after the activation). Those are exactly the
//! layers MLCNN can co-optimize once activation and average pooling are
//! reordered: LeNet-5 C1–C2, VGG's five block-final convs, GoogLeNet's
//! twelve branch-final convs feeding the three pooled concatenations
//! (the 5b module feeds the 8×8 global pool — the paper's headline case),
//! and DenseNet's three 1×1 transition convs.

use crate::spec::LayerSpec;
use serde::{Deserialize, Serialize};

/// Pooling that consumes a conv layer's (activated) output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolAfter {
    /// Pool window extent.
    pub window: usize,
    /// Pool stride.
    pub stride: usize,
    /// Average pooling (true) or max pooling (false) in the original net.
    pub avg: bool,
}

impl PoolAfter {
    /// The standard 2×2/stride-2 average pool.
    pub const fn avg2() -> Self {
        PoolAfter {
            window: 2,
            stride: 2,
            avg: true,
        }
    }
}

/// Geometry of one convolutional layer within a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvLayerGeom {
    /// Layer label as the paper's figures use them ("C1", "C2", …).
    pub name: String,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
    /// Kernel extent (square).
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Pooling that follows this layer's activation, if any.
    pub pool: Option<PoolAfter>,
}

impl ConvLayerGeom {
    /// Convolution output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Convolution output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Learnable parameters (weights + per-output-channel bias).
    pub fn params(&self) -> u64 {
        (self.out_ch * (self.in_ch * self.k * self.k) + self.out_ch) as u64
    }

    /// Multiply–accumulate count of the dense convolution.
    pub fn macs(&self) -> u64 {
        (self.out_h() * self.out_w() * self.out_ch * self.in_ch * self.k * self.k) as u64
    }

    /// True when MLCNN can fuse this layer with its pooling.
    pub fn is_fusable(&self) -> bool {
        self.pool.is_some()
    }
}

/// Geometry-level description of a full CNN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelDesc {
    /// Model name as the paper reports it.
    pub name: String,
    /// All convolutional layers in execution order.
    pub convs: Vec<ConvLayerGeom>,
    /// Fully connected layers as `(in_features, out_features)`.
    pub fc: Vec<(usize, usize)>,
}

impl ModelDesc {
    /// Number of convolutional layers (Table I, column 2).
    pub fn conv_layer_count(&self) -> usize {
        self.convs.len()
    }

    /// Total learnable parameters (Table I, column 3).
    pub fn param_count(&self) -> u64 {
        let conv: u64 = self.convs.iter().map(ConvLayerGeom::params).sum();
        let fc: u64 = self.fc.iter().map(|&(i, o)| (i * o + o) as u64).sum();
        conv + fc
    }

    /// Total dense-convolution MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        self.convs.iter().map(ConvLayerGeom::macs).sum()
    }

    /// The layers MLCNN can co-optimize (conv followed by pooling).
    pub fn fused_convs(&self) -> Vec<&ConvLayerGeom> {
        self.convs.iter().filter(|c| c.is_fusable()).collect()
    }
}

fn conv(
    name: &str,
    in_ch: usize,
    out_ch: usize,
    in_hw: usize,
    k: usize,
    pad: usize,
    pool: Option<PoolAfter>,
) -> ConvLayerGeom {
    ConvLayerGeom {
        name: name.into(),
        in_ch,
        out_ch,
        in_h: in_hw,
        in_w: in_hw,
        k,
        stride: 1,
        pad,
        pool,
    }
}

/// LeNet-5 on 3×32×32 inputs (1+1+1 conv layers, two pooled).
pub fn lenet5(classes: usize) -> ModelDesc {
    ModelDesc {
        name: "LeNet5".into(),
        convs: vec![
            conv("C1", 3, 6, 32, 5, 0, Some(PoolAfter::avg2())),
            conv("C2", 6, 16, 14, 5, 0, Some(PoolAfter::avg2())),
            conv("C3", 16, 120, 5, 5, 0, None),
        ],
        fc: vec![(120, 84), (84, classes)],
    }
}

fn vgg(name: &str, blocks: &[(usize, usize)], classes: usize) -> ModelDesc {
    // blocks: (conv count, channels); 2x2 pool after every block.
    let mut convs = Vec::new();
    let mut in_ch = 3;
    let mut hw = 32;
    let mut idx = 1;
    for &(count, ch) in blocks {
        for i in 0..count {
            let pool = if i + 1 == count {
                Some(PoolAfter::avg2())
            } else {
                None
            };
            convs.push(conv(&format!("C{idx}"), in_ch, ch, hw, 3, 1, pool));
            in_ch = ch;
            idx += 1;
        }
        hw /= 2;
    }
    ModelDesc {
        name: name.into(),
        convs,
        fc: vec![(512, classes)],
    }
}

/// VGG-16 (2+2+3+3+3 conv layers, block-final convs pooled).
pub fn vgg16(classes: usize) -> ModelDesc {
    vgg(
        "VGG16",
        &[(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)],
        classes,
    )
}

/// VGG-19 (2+2+4+4+4 conv layers).
pub fn vgg19(classes: usize) -> ModelDesc {
    vgg(
        "VGG19",
        &[(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)],
        classes,
    )
}

/// GoogLeNet inception channel plan: (1x1, 3x3red, 3x3, 5x5red, 5x5, poolproj).
type InceptionPlan = (usize, usize, usize, usize, usize, usize);

const INCEPTIONS: [(&str, InceptionPlan); 9] = [
    ("3a", (64, 96, 128, 16, 32, 32)),
    ("3b", (128, 128, 192, 32, 96, 64)),
    ("4a", (192, 96, 208, 16, 48, 64)),
    ("4b", (160, 112, 224, 24, 64, 64)),
    ("4c", (128, 128, 256, 24, 64, 64)),
    ("4d", (112, 144, 288, 32, 64, 64)),
    ("4e", (256, 160, 320, 32, 128, 128)),
    ("5a", (256, 160, 320, 32, 128, 128)),
    ("5b", (384, 192, 384, 48, 128, 128)),
];

/// GoogLeNet adapted to 32×32 inputs: a 3-conv stem then nine inception
/// modules (Table I's 1+1+1+6×9 = 57 conv layers). The modules whose
/// concatenated output feeds a pooling stage — 3b, 4e (2×2) and 5b (the
/// final 8×8 global average pool) — have their four branch-final convs
/// marked fused: 3 modules × 4 branches = the paper's "twelve layers in
/// GoogLeNet [that] can benefit".
pub fn googlenet(classes: usize) -> ModelDesc {
    let mut convs = Vec::new();
    // Stem (CIFAR-scale): 3→64 (3x3), 64→64 (1x1), 64→192 (3x3), all at 32.
    convs.push(conv("C1", 3, 64, 32, 3, 1, None));
    convs.push(conv("C2", 64, 64, 32, 1, 0, None));
    convs.push(conv("C3", 64, 192, 32, 3, 1, None));

    let mut in_ch = 192;
    let mut hw = 32;
    for (label, plan) in INCEPTIONS {
        let (c1, r3, c3, r5, c5, pp) = plan;
        // pooled module? 3b and 4e feed 2x2 pools, 5b feeds the 8x8 global
        // average pool.
        let pool = match label {
            "3b" | "4e" => Some(PoolAfter::avg2()),
            "5b" => Some(PoolAfter {
                window: 8,
                stride: 8,
                avg: true,
            }),
            _ => None,
        };
        convs.push(conv(&format!("i{label}-1x1"), in_ch, c1, hw, 1, 0, pool));
        convs.push(conv(&format!("i{label}-3x3r"), in_ch, r3, hw, 1, 0, None));
        convs.push(conv(&format!("i{label}-3x3"), r3, c3, hw, 3, 1, pool));
        convs.push(conv(&format!("i{label}-5x5r"), in_ch, r5, hw, 1, 0, None));
        convs.push(conv(&format!("i{label}-5x5"), r5, c5, hw, 5, 2, pool));
        convs.push(conv(&format!("i{label}-pp"), in_ch, pp, hw, 1, 0, pool));
        in_ch = c1 + c3 + c5 + pp;
        if pool.is_some() && label != "5b" {
            hw /= 2;
        }
    }
    ModelDesc {
        name: "GoogLeNet".into(),
        convs,
        fc: vec![(1024, classes)],
    }
}

/// DenseNet-121 adapted to 32×32 inputs. Dense blocks of 6/12/24/16
/// bottleneck layers (growth 32); the three transition blocks each end in
/// a 1×1 conv followed by 2×2 average pooling — the "three layers in the
/// transition blocks [that] can benefit from MLCNN's optimization".
/// Those 1×1 fused layers are also why the paper measures *zero* addition
/// reuse on DenseNet (K = 1 disables LAR/GAR).
pub fn densenet121(classes: usize) -> ModelDesc {
    const GROWTH: usize = 32;
    let mut convs = Vec::new();
    convs.push(conv("C0", 3, 64, 32, 3, 1, None));
    let mut ch = 64;
    let mut hw = 32;
    let blocks = [(1usize, 6usize), (2, 12), (3, 24), (4, 16)];
    for (bi, layers) in blocks {
        for li in 0..layers {
            let bottleneck = 4 * GROWTH;
            convs.push(conv(
                &format!("b{bi}l{li}-1x1"),
                ch,
                bottleneck,
                hw,
                1,
                0,
                None,
            ));
            convs.push(conv(
                &format!("b{bi}l{li}-3x3"),
                bottleneck,
                GROWTH,
                hw,
                3,
                1,
                None,
            ));
            ch += GROWTH;
        }
        if bi != 4 {
            // transition: 1x1 conv halving channels, then 2x2 avg pool.
            convs.push(conv(
                &format!("C{bi}"), // C1..C3, the paper's DenseNet bars
                ch,
                ch / 2,
                hw,
                1,
                0,
                Some(PoolAfter::avg2()),
            ));
            ch /= 2;
            hw /= 2;
        }
    }
    ModelDesc {
        name: "DenseNet".into(),
        convs,
        fc: vec![(ch, classes)],
    }
}

/// ResNet-18 adapted to 32×32 inputs (the paper's conclusion: "The
/// convolutional layers with pooling in ResNet-18 can benefit from MLCNN
/// with layer reordering and cross-layer optimization").
///
/// CIFAR-style plan: 3×3 stem at 64 channels, four stages of two basic
/// blocks (64/128/256/512), spatial halving by stride-2 convs at stage
/// entries, and a final 4×4 global average pool. Average pooling
/// distributes over the residual sum (`avgpool(a+b) = avgpool(a) +
/// avgpool(b)`), so the last basic block's convs — both the residual 3×3
/// and the stage's identity path — are fusable with the global pool; we
/// mark the block's two 3×3 convs.
pub fn resnet18(classes: usize) -> ModelDesc {
    let mut convs = Vec::new();
    convs.push(conv("C0", 3, 64, 32, 3, 1, None));
    let mut ch = 64;
    let mut hw = 32;
    let stages = [(1usize, 64usize), (2, 128), (3, 256), (4, 512)];
    for (si, out_ch) in stages {
        for bi in 0..2usize {
            let downsample = si != 1 && bi == 0;
            let stride = if downsample { 2 } else { 1 };
            let in_hw = hw;
            if downsample {
                hw /= 2;
            }
            // the two 3x3 convs of the basic block
            let last_stage_last_block = si == 4 && bi == 1;
            let pool = if last_stage_last_block {
                Some(PoolAfter {
                    window: 4,
                    stride: 4,
                    avg: true,
                })
            } else {
                None
            };
            convs.push(ConvLayerGeom {
                name: format!("s{si}b{bi}-a"),
                in_ch: ch,
                out_ch,
                in_h: in_hw,
                in_w: in_hw,
                k: 3,
                stride,
                pad: 1,
                pool: None,
            });
            convs.push(ConvLayerGeom {
                name: format!("s{si}b{bi}-b"),
                in_ch: out_ch,
                out_ch,
                in_h: hw,
                in_w: hw,
                k: 3,
                stride: 1,
                pad: 1,
                pool,
            });
            if downsample {
                // 1x1 projection on the skip path
                convs.push(ConvLayerGeom {
                    name: format!("s{si}b{bi}-proj"),
                    in_ch: ch,
                    out_ch,
                    in_h: in_hw,
                    in_w: in_hw,
                    k: 1,
                    stride: 2,
                    pad: 0,
                    pool: None,
                });
            }
            ch = out_ch;
        }
    }
    ModelDesc {
        name: "ResNet18".into(),
        convs,
        fc: vec![(512, classes)],
    }
}

/// The four Table-I models, in the paper's row order.
pub fn table1_models(classes: usize) -> Vec<ModelDesc> {
    vec![
        lenet5(classes),
        vgg16(classes),
        vgg19(classes),
        googlenet(classes),
    ]
}

/// The four models of the Figs. 12–15 evaluation, in the paper's order.
pub fn evaluation_models(classes: usize) -> Vec<ModelDesc> {
    vec![
        densenet121(classes),
        vgg16(classes),
        googlenet(classes),
        lenet5(classes),
    ]
}

// ---------------------------------------------------------------------------
// Trainable reduced-width variants (accuracy experiments)
// ---------------------------------------------------------------------------

/// Trainable LeNet-5 in the paper's original order (conv → ReLU → avg pool).
pub fn lenet5_spec(classes: usize) -> Vec<LayerSpec> {
    vec![
        LayerSpec::Conv {
            out_ch: 6,
            k: 5,
            stride: 1,
            pad: 0,
        },
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::Conv {
            out_ch: 16,
            k: 5,
            stride: 1,
            pad: 0,
        },
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::Conv {
            out_ch: 120,
            k: 5,
            stride: 1,
            pad: 0,
        },
        LayerSpec::ReLU,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 84 },
        LayerSpec::ReLU,
        LayerSpec::Linear { out: classes },
    ]
}

/// Two-layer perceptron head: flatten → hidden linear → ReLU → classifier.
/// The smallest member of the zoo — its forward pass is a pair of matmuls,
/// which makes it the reference model for workloads bound by per-request
/// *dispatch* rather than compute (e.g. serving-runtime benchmarks).
pub fn mlp_mini_spec(hidden: usize, classes: usize) -> Vec<LayerSpec> {
    vec![
        LayerSpec::Flatten,
        LayerSpec::Linear { out: hidden },
        LayerSpec::ReLU,
        LayerSpec::Linear { out: classes },
    ]
}

/// Reduced-width VGG-style network: three conv→ReLU→avg-pool blocks.
/// `width` scales channel counts (paper-shape at width 64; accuracy
/// experiments use 8–16 for tractable training).
pub fn vgg_mini_spec(width: usize, classes: usize) -> Vec<LayerSpec> {
    vec![
        LayerSpec::conv3(width),
        LayerSpec::ReLU,
        LayerSpec::conv3(width),
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::conv3(2 * width),
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::conv3(4 * width),
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::Flatten,
        LayerSpec::Linear { out: classes },
    ]
}

/// Inception module whose branches end in a *raw* convolution: the
/// module-exit activation is applied at the top level (after the channel
/// concat), which is what makes the ReLU ↔ avg-pool reordering a real
/// transformation for this architecture — branch outputs are mixed-sign
/// when the pool sees them.
fn inception_spec(c1: usize, r3: usize, c3: usize, pp: usize) -> LayerSpec {
    LayerSpec::Inception {
        branches: vec![
            vec![LayerSpec::conv1(c1)],
            vec![LayerSpec::conv1(r3), LayerSpec::ReLU, LayerSpec::conv3(c3)],
            vec![LayerSpec::conv1(pp)],
        ],
    }
}

/// Reduced GoogLeNet: stem conv + two inception modules with pooling
/// between, global average pooling head (preserving the 8×8 final pool
/// motif the paper highlights).
pub fn googlenet_mini_spec(width: usize, classes: usize) -> Vec<LayerSpec> {
    vec![
        LayerSpec::conv3(4 * width),
        LayerSpec::ReLU,
        inception_spec(2 * width, 2 * width, 4 * width, 2 * width),
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        inception_spec(4 * width, 2 * width, 4 * width, 2 * width),
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::GlobalAvgPool,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: classes },
    ]
}

/// Reduced DenseNet: init conv, two dense blocks, a transition
/// (1×1 conv + 2×2 avg pool — the fusable motif), global pool head.
/// Note DenseNet's transitions already use the *reordered* structure
/// (conv → pool → next block's activation), which the paper cites as
/// evidence the reordering is safe.
pub fn densenet_mini_spec(growth: usize, classes: usize) -> Vec<LayerSpec> {
    let dense = |g: usize| LayerSpec::DenseBlock {
        inner: vec![LayerSpec::conv3(g), LayerSpec::ReLU],
    };
    vec![
        LayerSpec::conv3(4 * growth),
        LayerSpec::ReLU,
        dense(2 * growth),
        dense(2 * growth),
        LayerSpec::conv1(4 * growth),
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        dense(2 * growth),
        dense(2 * growth),
        LayerSpec::GlobalAvgPool,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: classes },
    ]
}

/// Reduced trainable ResNet: stem conv, two residual stages (one with a
/// projection downsample), batch norm and a global-pool head.
pub fn resnet_mini_spec(width: usize, classes: usize) -> Vec<LayerSpec> {
    let basic = |ch: usize| LayerSpec::Residual {
        inner: vec![
            LayerSpec::conv3(ch),
            LayerSpec::BatchNorm,
            LayerSpec::ReLU,
            LayerSpec::conv3(ch),
            LayerSpec::BatchNorm,
        ],
        projector: vec![],
    };
    let down = |ch: usize| LayerSpec::Residual {
        inner: vec![
            LayerSpec::Conv {
                out_ch: ch,
                k: 3,
                stride: 2,
                pad: 1,
            },
            LayerSpec::BatchNorm,
            LayerSpec::ReLU,
            LayerSpec::conv3(ch),
            LayerSpec::BatchNorm,
        ],
        projector: vec![LayerSpec::Conv {
            out_ch: ch,
            k: 1,
            stride: 2,
            pad: 0,
        }],
    };
    vec![
        LayerSpec::conv3(width),
        LayerSpec::BatchNorm,
        LayerSpec::ReLU,
        basic(width),
        LayerSpec::ReLU,
        down(2 * width),
        LayerSpec::ReLU,
        LayerSpec::GlobalAvgPool,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: classes },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_network, propagate_shape};
    use mlcnn_tensor::Shape4;

    #[test]
    fn table1_conv_layer_counts_match_paper() {
        // Table I: LeNet5 1+1+1 = 3; VGG16 2+2+3+3+3 = 13;
        // VGG19 2+2+4+4+4 = 16; GoogLeNet 1+1+1 + 9*6 = 57.
        let models = table1_models(100);
        let counts: Vec<usize> = models.iter().map(ModelDesc::conv_layer_count).collect();
        assert_eq!(counts, vec![3, 13, 16, 57]);
    }

    #[test]
    fn lenet5_params_match_paper_62k() {
        // Table I reports 62K learnable parameters for LeNet-5.
        let p = lenet5(10).param_count();
        assert!((55_000..70_000).contains(&p), "LeNet-5 params {p}");
    }

    #[test]
    fn vgg_params_match_paper_scale() {
        // Table I: VGG16 14728K, VGG19 20040K.
        let p16 = vgg16(10).param_count();
        assert!(
            (14_000_000..15_200_000).contains(&p16),
            "VGG16 params {p16}"
        );
        let p19 = vgg19(10).param_count();
        assert!(
            (19_300_000..20_700_000).contains(&p19),
            "VGG19 params {p19}"
        );
        assert!(p19 > p16);
    }

    #[test]
    fn googlenet_params_plausible() {
        // ~6M parameters for GoogLeNet (the paper's Table I value 6166250
        // read as a raw count, not thousands).
        let p = googlenet(100).param_count();
        assert!((5_000_000..8_000_000).contains(&p), "GoogLeNet params {p}");
    }

    #[test]
    fn fused_layer_counts_match_paper_section_vii() {
        // LeNet-5: 2 fused; VGG-16: 5; GoogLeNet: 12; DenseNet: 3.
        assert_eq!(lenet5(10).fused_convs().len(), 2);
        assert_eq!(vgg16(10).fused_convs().len(), 5);
        assert_eq!(googlenet(10).fused_convs().len(), 12);
        assert_eq!(densenet121(10).fused_convs().len(), 3);
    }

    #[test]
    fn googlenet_has_8x8_final_pool() {
        let g = googlenet(10);
        let max_pool_window = g
            .fused_convs()
            .iter()
            .map(|c| c.pool.unwrap().window)
            .max()
            .unwrap();
        assert_eq!(max_pool_window, 8);
    }

    #[test]
    fn densenet_fused_layers_are_1x1() {
        let d = densenet121(10);
        for c in d.fused_convs() {
            assert_eq!(c.k, 1, "{} is not 1x1", c.name);
        }
    }

    #[test]
    fn geometry_chains_are_consistent() {
        // each conv's input channels must match the producing structure:
        // for the sequential models, out_ch of block-final layers chains.
        for m in [lenet5(10), vgg16(10), vgg19(10)] {
            let mut prev_out = 3;
            let mut prev_hw = 32;
            for c in &m.convs {
                assert_eq!(c.in_ch, prev_out, "{}: {}", m.name, c.name);
                assert_eq!(c.in_h, prev_hw, "{}: {}", m.name, c.name);
                prev_out = c.out_ch;
                prev_hw = c.out_h();
                if let Some(p) = c.pool {
                    prev_hw = (prev_hw - p.window) / p.stride + 1;
                }
            }
        }
    }

    #[test]
    fn googlenet_spatial_plan_reaches_8x8() {
        let g = googlenet(10);
        // the 5b module must operate at 8x8 so the final pool is 8x8 global
        let i5b = g.convs.iter().find(|c| c.name == "i5b-3x3").unwrap();
        assert_eq!(i5b.in_h, 8);
    }

    #[test]
    fn vgg16_macs_dominated_by_early_layers() {
        // sanity on MAC accounting: first block (64ch at 32x32) has more
        // MACs than the last block (512ch at 2x2).
        let m = vgg16(10);
        let c2 = m.convs[1].macs();
        let c13 = m.convs[12].macs();
        assert!(c2 > c13);
        assert!(m.total_macs() > 100_000_000);
    }

    #[test]
    fn trainable_specs_build_and_produce_class_logits() {
        let input = Shape4::new(1, 3, 32, 32);
        for (name, spec) in [
            ("lenet", lenet5_spec(10)),
            ("vgg-mini", vgg_mini_spec(4, 10)),
            ("googlenet-mini", googlenet_mini_spec(4, 10)),
            ("densenet-mini", densenet_mini_spec(4, 10)),
        ] {
            let out = propagate_shape(&spec, input).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out, Shape4::new(1, 1, 1, 10), "{name}");
            let net = build_network(&spec, input, 7).unwrap();
            assert!(net.param_count() > 0, "{name}");
        }
    }

    #[test]
    fn resnet18_geometry() {
        let m = resnet18(10);
        // 1 stem + 8 blocks x 2 convs + 3 projections = 20 convs
        assert_eq!(m.conv_layer_count(), 20);
        // ~11M parameters like the reference ResNet-18
        let p = m.param_count();
        assert!((10_000_000..12_500_000).contains(&p), "params {p}");
        // exactly one fused conv: the last block's second 3x3 before the
        // 4x4 global pool
        let fused = m.fused_convs();
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].name, "s4b1-b");
        assert_eq!(fused[0].pool.unwrap().window, 4);
        assert_eq!(fused[0].in_h, 4);
    }

    #[test]
    fn resnet_mini_trains_shapes() {
        let input = Shape4::new(1, 3, 32, 32);
        let spec = resnet_mini_spec(4, 10);
        let out = propagate_shape(&spec, input).unwrap();
        assert_eq!(out, Shape4::new(1, 1, 1, 10));
        let net = build_network(&spec, input, 2).unwrap();
        assert!(net.param_count() > 0);
    }

    #[test]
    fn evaluation_models_order_matches_figures() {
        let names: Vec<String> = evaluation_models(100).into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["DenseNet", "VGG16", "GoogLeNet", "LeNet5"]);
    }
}
