//! Integration: the modern-layer extensions (batch norm, dropout,
//! residual blocks, Adam, LR decay) train real networks end to end.

use mlcnn_data::blobs::{generate, BlobsConfig};
use mlcnn_nn::adam::Adam;
use mlcnn_nn::loss::softmax_cross_entropy;
use mlcnn_nn::spec::{build_network, LayerSpec};
use mlcnn_nn::train::{evaluate, fit, TrainConfig};
use mlcnn_nn::zoo;
use mlcnn_tensor::Shape4;

fn blob_data(classes: usize) -> (mlcnn_data::Dataset, mlcnn_data::Dataset) {
    generate(BlobsConfig {
        classes,
        per_class: 24,
        channels: 1,
        side: 8,
        noise: 0.25,
        seed: 5,
    })
    .split(0.75)
}

#[test]
fn batchnorm_network_trains() {
    let (train, test) = blob_data(4);
    let specs = vec![
        LayerSpec::conv3(6),
        LayerSpec::BatchNorm,
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 4 },
    ];
    let mut net = build_network(&specs, Shape4::new(1, 1, 8, 8), 1).unwrap();
    let history = fit(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 8,
            batch_size: 8,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(history.last().unwrap().loss < history.first().unwrap().loss);
    let acc = evaluate(&mut net, &test, &[1], 8).unwrap().at(1).unwrap();
    assert!(acc > 0.6, "batchnorm net accuracy {acc}");
}

#[test]
fn dropout_network_trains_and_infers_deterministically() {
    let (train, test) = blob_data(3);
    let specs = vec![
        LayerSpec::conv3(4),
        LayerSpec::ReLU,
        LayerSpec::Dropout { percent: 30 },
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 3 },
    ];
    let mut net = build_network(&specs, Shape4::new(1, 1, 8, 8), 2).unwrap();
    fit(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 6,
            batch_size: 8,
            ..Default::default()
        },
    )
    .unwrap();
    // inference is deterministic (dropout disabled)
    let batch = test.batches(4).next().unwrap();
    let a = net.forward(&batch.images).unwrap();
    let b = net.forward(&batch.images).unwrap();
    assert_eq!(a, b);
}

#[test]
fn resnet_mini_learns_with_lr_decay() {
    let (train, test) = blob_data(4);
    // resnet_mini expects 3-channel 32x32; build a small residual net for
    // the blob geometry instead
    let specs = vec![
        LayerSpec::conv3(6),
        LayerSpec::ReLU,
        LayerSpec::Residual {
            inner: vec![
                LayerSpec::conv3(6),
                LayerSpec::BatchNorm,
                LayerSpec::ReLU,
                LayerSpec::conv3(6),
            ],
            projector: vec![],
        },
        LayerSpec::ReLU,
        LayerSpec::GlobalAvgPool,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 4 },
    ];
    let mut net = build_network(&specs, Shape4::new(1, 1, 8, 8), 3).unwrap();
    let history = fit(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 10,
            batch_size: 8,
            lr: 0.05,
            lr_decay: 0.5,
            lr_decay_every: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        history.last().unwrap().loss < history.first().unwrap().loss,
        "{history:?}"
    );
    let acc = evaluate(&mut net, &test, &[1], 8).unwrap().at(1).unwrap();
    assert!(acc > 0.5, "residual net accuracy {acc}");
}

#[test]
fn adam_trains_a_network_too() {
    let (train, test) = blob_data(3);
    let specs = vec![
        LayerSpec::conv3(4),
        LayerSpec::ReLU,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 3 },
    ];
    let mut net = build_network(&specs, Shape4::new(1, 1, 8, 8), 4).unwrap();
    let mut opt = Adam::new(0.01, 1e-4);
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for _ in 0..8 {
        for batch in train.batches(8) {
            net.zero_grad();
            let logits = net.forward_mode(&batch.images, true).unwrap();
            let out = softmax_cross_entropy(&logits, &batch.labels).unwrap();
            net.backward(&out.grad).unwrap();
            let mut params = net.params();
            opt.step(&mut params);
            first_loss.get_or_insert(out.loss);
            last_loss = out.loss;
        }
    }
    assert!(last_loss < first_loss.unwrap());
    let acc = evaluate(&mut net, &test, &[1], 8).unwrap().at(1).unwrap();
    assert!(acc > 0.6, "adam-trained accuracy {acc}");
}

#[test]
fn full_resnet_mini_spec_runs_one_epoch_on_images() {
    use mlcnn_data::shapes::{generate as gen_shapes, ShapesConfig};
    let data = gen_shapes(ShapesConfig::cifar10_like(2, 9));
    let specs = zoo::resnet_mini_spec(2, 10);
    let mut net = build_network(&specs, Shape4::new(1, 3, 32, 32), 5).unwrap();
    let history = fit(
        &mut net,
        &data,
        &TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 0.02,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(history[0].loss.is_finite());
}
