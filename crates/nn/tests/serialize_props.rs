//! Hostile-input properties of the parameter format: `load_params` is
//! total over arbitrary bytes — it either loads or returns a typed
//! error, never panics, never lets a header drive an oversized
//! allocation, and never mutates the target network on failure.

use mlcnn_nn::serialize::{load_params, save_params};
use mlcnn_nn::spec::{build_network, LayerSpec};
use mlcnn_nn::Network;
use mlcnn_tensor::{init, Shape4};
use proptest::prelude::*;

fn tiny() -> Network {
    build_network(
        &[LayerSpec::Flatten, LayerSpec::Linear { out: 3 }],
        Shape4::new(1, 1, 4, 4),
        5,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: decode or typed error, never a panic.
    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0usize..256)) {
        let mut net = tiny();
        let _ = load_params(&mut net, &data);
    }

    /// A well-formed header followed by hostile tensor-count and shape
    /// words: the count/byte-budget guards must reject before any
    /// allocation sized by attacker-controlled words, so this completes
    /// quickly and without panicking even when the header claims
    /// billions of elements.
    #[test]
    fn hostile_headers_never_panic_or_allocate(
        count in any::<u32>(),
        dims in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        tail in proptest::collection::vec(any::<u8>(), 0usize..64),
    ) {
        let mut data = Vec::new();
        data.extend_from_slice(b"MLCN");
        data.extend_from_slice(&1u16.to_be_bytes());
        data.extend_from_slice(&count.to_be_bytes());
        for d in [dims.0, dims.1, dims.2, dims.3] {
            data.extend_from_slice(&d.to_be_bytes());
        }
        data.extend_from_slice(&tail);
        let mut net = tiny();
        let _ = load_params(&mut net, &data);
    }

    /// Any single byte mutation of a valid blob either still loads or
    /// fails typed — and a failed load leaves the network untouched.
    #[test]
    fn mutations_never_clobber_the_network(offset in any::<u64>(), xor in 1u8..=255) {
        let mut donor = tiny();
        let mut blob = save_params(&mut donor).to_vec();
        let at = (offset as usize) % blob.len();
        blob[at] ^= xor;

        let mut net = tiny();
        let x = init::uniform(Shape4::new(1, 1, 4, 4), -1.0, 1.0, &mut init::rng(9));
        let before = net.forward(&x).unwrap();
        if load_params(&mut net, &blob).is_err() {
            // failure must not have partially imported anything
            prop_assert_eq!(net.forward(&x).unwrap(), before);
        }
    }

    /// Any truncation of a valid blob is rejected (except the trivial
    /// full-length "truncation").
    #[test]
    fn truncations_are_rejected(cut in any::<u64>()) {
        let mut donor = tiny();
        let blob = save_params(&mut donor).to_vec();
        let at = (cut as usize) % blob.len();
        let mut net = tiny();
        prop_assert!(load_params(&mut net, &blob[..at]).is_err());
    }
}
