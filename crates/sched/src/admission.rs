//! Cost-based admission control for guaranteed requests.
//!
//! The policy answers one question at submit time: *if we enqueue this
//! guaranteed request now, can the service provably finish it inside its
//! budget?* The bound is pessimistic on purpose — it assumes the request
//! waits out a full batching window and that every guaranteed request
//! already queued is batched ahead of it at the configured `max_batch`,
//! spread across the worker pool. If even that bound misses the budget,
//! the request is refused up front (`ServeError::AdmissionRejected` in
//! `mlcnn-serve`) instead of being queued and shed at expiry — the
//! acceptance criterion is *zero* deadline-expired sheds for the
//! guaranteed class under overload.

use crate::cost::CostOracle;

/// Admission policy derived from a [`CostOracle`] plus the service's
/// batching configuration.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    oracle: CostOracle,
    max_batch: usize,
    workers: usize,
    max_wait_nanos: u64,
}

impl AdmissionPolicy {
    /// Build a policy. `max_batch` and `workers` are clamped to ≥ 1.
    pub fn new(
        oracle: CostOracle,
        max_batch: usize,
        workers: usize,
        max_wait_nanos: u64,
    ) -> AdmissionPolicy {
        AdmissionPolicy {
            oracle,
            max_batch: max_batch.max(1),
            workers: workers.max(1),
            max_wait_nanos,
        }
    }

    /// The oracle this policy consults.
    pub fn oracle(&self) -> &CostOracle {
        &self.oracle
    }

    /// Pessimistic completion estimate (nanoseconds from now) for a new
    /// guaranteed request arriving behind `guaranteed_ahead` queued
    /// guaranteed requests: one full batching window, plus enough
    /// `max_batch`-sized rounds across the worker pool to drain the
    /// queue including the newcomer.
    pub fn eta_nanos(&self, guaranteed_ahead: usize) -> u64 {
        let batches = (guaranteed_ahead + 1).div_ceil(self.max_batch);
        let rounds = batches.div_ceil(self.workers) as u64;
        let per_round = self.oracle.predicted_service_nanos(self.max_batch);
        self.max_wait_nanos
            .saturating_add(per_round.saturating_mul(rounds))
    }

    /// Admit or refuse a guaranteed request with `budget_nanos`
    /// remaining, given `guaranteed_ahead` guaranteed requests already
    /// queued. `Err` carries the pessimistic ETA that broke the budget.
    pub fn admit(&self, guaranteed_ahead: usize, budget_nanos: u64) -> Result<(), u64> {
        let eta = self.eta_nanos(guaranteed_ahead);
        if eta <= budget_nanos {
            Ok(())
        } else {
            Err(eta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_core::opcount::OpCounts;

    fn oracle() -> CostOracle {
        // 1000 flops/item at 1 ns/flop, no base: svc(b) = 1000·b ns.
        CostOracle::with_coefficients(
            OpCounts {
                mults: 500,
                adds: 500,
                divs: 0,
                cmps: 0,
            },
            0.0,
            1.0,
        )
    }

    #[test]
    fn empty_queue_costs_one_window_plus_one_batch() {
        let p = AdmissionPolicy::new(oracle(), 4, 2, 10_000);
        // 1 request → 1 batch → 1 round of svc(4) = 4000 ns.
        assert_eq!(p.eta_nanos(0), 10_000 + 4_000);
    }

    #[test]
    fn eta_grows_with_queue_depth_in_batch_rounds() {
        let p = AdmissionPolicy::new(oracle(), 4, 1, 0);
        // ahead=3 → 4 reqs → 1 batch → 1 round.
        assert_eq!(p.eta_nanos(3), 4_000);
        // ahead=4 → 5 reqs → 2 batches → 2 rounds (1 worker).
        assert_eq!(p.eta_nanos(4), 8_000);
    }

    #[test]
    fn workers_absorb_parallel_batches() {
        let p = AdmissionPolicy::new(oracle(), 4, 2, 0);
        // ahead=7 → 8 reqs → 2 batches → 1 round across 2 workers.
        assert_eq!(p.eta_nanos(7), 4_000);
    }

    #[test]
    fn admit_is_a_threshold_on_eta() {
        let p = AdmissionPolicy::new(oracle(), 4, 1, 1_000);
        let eta = p.eta_nanos(0); // 1000 + 4000
        assert_eq!(p.admit(0, eta), Ok(()));
        assert_eq!(p.admit(0, eta - 1), Err(eta));
    }
}
