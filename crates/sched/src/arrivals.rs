//! Deterministic open-loop arrival schedules for overload experiments.
//!
//! An open-loop load generator must decide *when* requests arrive before
//! it sends any — arrivals cannot depend on responses, or overload would
//! throttle itself and the experiment measures nothing. This module
//! pre-computes the whole schedule from a seed, so a given
//! `(seed, rate, n)` triple produces bit-identical arrival times on every
//! run, machine, and CI job.
//!
//! Two shapes: `uniform` (jittered constant rate) and `bursty` (groups of
//! simultaneous arrivals at the same average rate) — the latter is what
//! shakes out shedding behavior, since queue depth spikes far above the
//! average.

/// A precomputed, nondecreasing list of arrival offsets (nanoseconds
/// from the start of the run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    offsets: Vec<u64>,
}

/// splitmix64 — tiny, seedable, and stable across platforms; the same
/// generator the vendored `rand` stand-in builds on.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ArrivalSchedule {
    /// Jittered constant-rate arrivals: request `i` lands at
    /// `i · interval + jitter_i` with `jitter_i ∈ [0, interval)`, so the
    /// long-run rate is exactly `rate_rps` and no two schedules with
    /// different seeds coincide.
    pub fn uniform(seed: u64, rate_rps: u64, n: usize) -> ArrivalSchedule {
        let interval = 1_000_000_000 / rate_rps.max(1);
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let mut offsets: Vec<u64> = (0..n as u64)
            .map(|i| i * interval + splitmix64(&mut state) % interval.max(1))
            .collect();
        offsets.sort_unstable();
        ArrivalSchedule { offsets }
    }

    /// Bursty arrivals at the same average rate: groups of `burst`
    /// simultaneous requests, group `g` at `g · burst · interval` plus a
    /// small per-group jitter (< a quarter of the group period), so
    /// bursts never reorder.
    pub fn bursty(seed: u64, rate_rps: u64, n: usize, burst: usize) -> ArrivalSchedule {
        let burst = burst.max(1);
        let interval = 1_000_000_000 / rate_rps.max(1);
        let group_period = interval * burst as u64;
        let jitter_span = (group_period / 4).max(1);
        let mut state = seed ^ 0xE703_7ED1_A0B4_28DB;
        let mut offsets = Vec::with_capacity(n);
        let mut g = 0u64;
        while offsets.len() < n {
            let at = g * group_period + splitmix64(&mut state) % jitter_span;
            for _ in 0..burst.min(n - offsets.len()) {
                offsets.push(at);
            }
            g += 1;
        }
        ArrivalSchedule { offsets }
    }

    /// The arrival offsets, nanoseconds from run start, nondecreasing.
    pub fn offsets_nanos(&self) -> &[u64] {
        &self.offsets
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_different_seed_different() {
        let a = ArrivalSchedule::uniform(42, 1_000, 256);
        let b = ArrivalSchedule::uniform(42, 1_000, 256);
        let c = ArrivalSchedule::uniform(43, 1_000, 256);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let d = ArrivalSchedule::bursty(42, 1_000, 256, 16);
        assert_eq!(d, ArrivalSchedule::bursty(42, 1_000, 256, 16));
        assert_ne!(d, ArrivalSchedule::bursty(7, 1_000, 256, 16));
    }

    #[test]
    fn offsets_are_nondecreasing() {
        for sched in [
            ArrivalSchedule::uniform(1, 5_000, 500),
            ArrivalSchedule::bursty(1, 5_000, 500, 16),
        ] {
            assert_eq!(sched.len(), 500);
            for w in sched.offsets_nanos().windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn long_run_rate_matches_request() {
        // n requests at rate r span ≈ n/r seconds; allow jitter slack of
        // one interval on either side.
        let (rate, n) = (2_000u64, 1_000usize);
        for sched in [
            ArrivalSchedule::uniform(9, rate, n),
            ArrivalSchedule::bursty(9, rate, n, 20),
        ] {
            let span = *sched.offsets_nanos().last().unwrap();
            let ideal = (n as u64 - 1) * (1_000_000_000 / rate);
            let tol = 1_000_000_000 / rate * 20;
            assert!(span <= ideal + tol, "span {span} too long vs ideal {ideal}");
            assert!(
                span + tol >= ideal,
                "span {span} too short vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn bursts_are_simultaneous_groups() {
        let sched = ArrivalSchedule::bursty(5, 10_000, 64, 16);
        let offs = sched.offsets_nanos();
        for group in offs.chunks(16) {
            assert!(group.iter().all(|&t| t == group[0]));
        }
        // distinct groups land at distinct times
        assert!(offs[0] < offs[16]);
    }
}
