//! `mlcnn-sched` — SLO-aware scheduling primitives built on the paper's
//! analytic cost model.
//!
//! The repo's distinguishing asset is an *exact* op-count model for every
//! compiled plan (`mlcnn_core::opcount` / `core::analytic`). This crate
//! turns it into a serving-time **cost oracle** and derives every
//! scheduling decision from it instead of hand tuning:
//!
//! * [`cost::CostOracle`] — per-request cost from the plan's own op
//!   counts, calibrated against a short measured warmup; exposes
//!   predicted service time as a function of batch size (provably
//!   monotone in the batch).
//! * [`slo::SloClass`] / [`slo::SloSpec`] — the two serving classes
//!   (`guaranteed` with a latency budget vs `best_effort`), attached per
//!   model and carried on the wire.
//! * [`admission::AdmissionPolicy`] — cost-based admission control:
//!   a guaranteed request provably unable to meet its budget is rejected
//!   at submit time instead of queued and shed later.
//! * [`autotune`] — sizes `(max_batch, max_wait)` per model from the
//!   oracle's batch-latency curve.
//! * [`arrivals::ArrivalSchedule`] — deterministic seeded open-loop
//!   arrival schedules (uniform + bursty) so overload experiments
//!   reproduce run-to-run and in CI.
//!
//! The serving integration (EDF batch formation, per-class metrics,
//! overload shedding) lives in `mlcnn-serve`; this crate stays free of
//! threads and sockets so every policy is unit-testable in virtual time.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod arrivals;
pub mod autotune;
pub mod cost;
pub mod slo;

pub use admission::AdmissionPolicy;
pub use arrivals::ArrivalSchedule;
pub use autotune::{autotune, TunedPolicy};
pub use cost::{plan_counts, step_counts, CostOracle};
pub use slo::{SloClass, SloSpec};
