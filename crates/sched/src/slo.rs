//! SLO classes: the request taxonomy the scheduler optimizes over.
//!
//! Two classes, deliberately minimal:
//!
//! * **`guaranteed`** — carries a hard latency budget. The service turns
//!   the budget into an absolute deadline at admission, schedules the
//!   request earliest-deadline-first, and *refuses* it up front when the
//!   cost oracle proves the budget cannot be met (instead of queueing
//!   work destined to be shed).
//! * **`best_effort`** — no budget. Served FIFO behind guaranteed work,
//!   and the first to be shed when the service is overloaded.
//!
//! The class travels on the wire as a single byte in the `InferSlo`
//! frame (a *new* frame kind — existing frames are untouched, so
//! classless clients and servers interoperate unchanged).

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// The serving class of a request or model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// Hard latency budget; admission-controlled and scheduled EDF.
    Guaranteed,
    /// No budget; absorbs rejection and shedding under overload.
    BestEffort,
}

impl SloClass {
    /// Stable dense index (`Guaranteed = 0`, `BestEffort = 1`) for
    /// per-class metric arrays.
    pub fn index(self) -> usize {
        match self {
            SloClass::Guaranteed => 0,
            SloClass::BestEffort => 1,
        }
    }

    /// Both classes, in [`SloClass::index`] order.
    pub const ALL: [SloClass; 2] = [SloClass::Guaranteed, SloClass::BestEffort];

    /// Wire byte for the `InferSlo` frame.
    pub fn to_wire(self) -> u8 {
        match self {
            SloClass::BestEffort => 0,
            SloClass::Guaranteed => 1,
        }
    }

    /// Parse the wire byte; `None` for an unknown class (the decoder
    /// rejects the frame rather than guessing).
    pub fn from_wire(byte: u8) -> Option<SloClass> {
        match byte {
            0 => Some(SloClass::BestEffort),
            1 => Some(SloClass::Guaranteed),
            _ => None,
        }
    }

    /// Stable lowercase name (`"guaranteed"` / `"best_effort"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SloClass::Guaranteed => "guaranteed",
            SloClass::BestEffort => "best_effort",
        }
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A class plus its (class-dependent) latency budget.
///
/// Invariants are linted, not assumed: a `guaranteed` spec without a
/// budget is `D001`, a `best_effort` spec *with* one is `D004`
/// (`mlcnn_check::check_slo_config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// The serving class.
    pub class: SloClass,
    /// Latency budget (deadline from submission); `guaranteed` only.
    pub budget: Option<Duration>,
}

impl SloSpec {
    /// A guaranteed spec with `budget`.
    pub fn guaranteed(budget: Duration) -> SloSpec {
        SloSpec {
            class: SloClass::Guaranteed,
            budget: Some(budget),
        }
    }

    /// The best-effort spec (no budget).
    pub fn best_effort() -> SloSpec {
        SloSpec {
            class: SloClass::BestEffort,
            budget: None,
        }
    }

    /// The budget in microseconds, `0` when absent — the wire encoding.
    pub fn budget_micros(&self) -> u64 {
        self.budget
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    /// The budget in nanoseconds, `0` when absent.
    pub fn budget_nanos(&self) -> u64 {
        self.budget
            .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    /// Rebuild a spec from its wire form (`class` byte already parsed).
    /// A zero budget decodes as "no budget".
    pub fn from_wire(class: SloClass, budget_micros: u64) -> SloSpec {
        SloSpec {
            class,
            budget: (budget_micros > 0).then(|| Duration::from_micros(budget_micros)),
        }
    }
}

impl FromStr for SloSpec {
    type Err = String;

    /// Parse the CLI form: `best-effort` | `best_effort` |
    /// `guaranteed:<budget_micros>`.
    fn from_str(s: &str) -> Result<SloSpec, String> {
        match s.split_once(':') {
            None => match s {
                "best-effort" | "best_effort" => Ok(SloSpec::best_effort()),
                "guaranteed" => Err("guaranteed needs a budget: guaranteed:<micros>".into()),
                other => Err(format!(
                    "unknown SLO '{other}' (best-effort | guaranteed:<micros>)"
                )),
            },
            Some(("guaranteed", micros)) => {
                let micros: u64 = micros
                    .parse()
                    .map_err(|e| format!("bad SLO budget '{micros}': {e}"))?;
                if micros == 0 {
                    return Err("guaranteed budget must be positive".into());
                }
                Ok(SloSpec::guaranteed(Duration::from_micros(micros)))
            }
            Some((other, _)) => Err(format!(
                "unknown SLO class '{other}' (best-effort | guaranteed:<micros>)"
            )),
        }
    }
}

impl fmt::Display for SloSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.budget {
            Some(b) => write!(f, "{}:{}", self.class, b.as_micros()),
            None => write!(f, "{}", self.class),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_round_trip() {
        for class in SloClass::ALL {
            assert_eq!(SloClass::from_wire(class.to_wire()), Some(class));
        }
        assert_eq!(SloClass::from_wire(7), None);
    }

    #[test]
    fn spec_wire_form_round_trips() {
        let g = SloSpec::guaranteed(Duration::from_micros(25_000));
        assert_eq!(SloSpec::from_wire(g.class, g.budget_micros()), g);
        let b = SloSpec::best_effort();
        assert_eq!(SloSpec::from_wire(b.class, b.budget_micros()), b);
    }

    #[test]
    fn cli_parse_accepts_both_classes_and_rejects_garbage() {
        assert_eq!(
            "guaranteed:25000".parse::<SloSpec>().unwrap(),
            SloSpec::guaranteed(Duration::from_micros(25_000))
        );
        assert_eq!(
            "best-effort".parse::<SloSpec>().unwrap(),
            SloSpec::best_effort()
        );
        assert!("guaranteed".parse::<SloSpec>().is_err());
        assert!("guaranteed:0".parse::<SloSpec>().is_err());
        assert!("gold:5".parse::<SloSpec>().is_err());
    }

    #[test]
    fn indices_are_dense_and_stable() {
        assert_eq!(SloClass::Guaranteed.index(), 0);
        assert_eq!(SloClass::BestEffort.index(), 1);
        assert_eq!(SloClass::ALL[0], SloClass::Guaranteed);
    }
}
