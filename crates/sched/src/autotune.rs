//! Batch-policy auto-tuning from the oracle's batch-latency curve.
//!
//! Hand-tuned `(max_batch, max_wait)` knobs are exactly what the cost
//! oracle makes unnecessary: given a guaranteed latency budget `B`, the
//! tuner picks the largest batch whose *predicted* service time fits in
//! `B/4`, then sets the batching window no larger than that service time
//! (waiting longer than one batch takes to run never improves
//! throughput) and no larger than `B/4`.
//!
//! The resulting policy satisfies `predicted(max_batch) + max_wait ≤ B/2`
//! by construction, leaving half the budget as headroom for queueing —
//! the slack the admission bound (`AdmissionPolicy::eta_nanos`) spends.
//! The `D005` lint warns when a hand-written config violates this.

use crate::cost::CostOracle;
use std::time::Duration;

/// A tuned `(max_batch, max_wait)` pair for the `Microbatcher`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedPolicy {
    /// Largest batch whose predicted service time fits the budget share.
    pub max_batch: usize,
    /// Batching window: `min(budget/4, predicted(max_batch))`.
    pub max_wait: Duration,
}

/// Size `(max_batch, max_wait)` for a guaranteed `budget` from the
/// oracle's batch-latency curve, never exceeding `batch_cap` (the
/// operator's configured ceiling, which also bounds workspace memory).
///
/// Falls back to batch 1 when even a single item overruns the budget
/// share — the `D003` lint separately denies configs where a single item
/// overruns the *whole* budget.
pub fn autotune(oracle: &CostOracle, budget: Duration, batch_cap: usize) -> TunedPolicy {
    let share = (budget.as_nanos().min(u64::MAX as u128) as u64) / 4;
    let cap = batch_cap.max(1);
    let mut best = 1;
    for (i, &nanos) in oracle.batch_latency_curve(cap).iter().enumerate() {
        if nanos <= share {
            best = i + 1;
        } else {
            break; // curve is monotone; nothing larger fits
        }
    }
    let svc = oracle.predicted_service_nanos(best);
    TunedPolicy {
        max_batch: best,
        max_wait: Duration::from_nanos(svc.min(share)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_core::opcount::OpCounts;

    fn oracle(base: f64, per_flop: f64) -> CostOracle {
        // 1000 flops/item
        CostOracle::with_coefficients(
            OpCounts {
                mults: 500,
                adds: 500,
                divs: 0,
                cmps: 0,
            },
            base,
            per_flop,
        )
    }

    #[test]
    fn picks_largest_batch_within_quarter_budget() {
        // svc(b) = 1000·b ns; budget 32 µs → share 8 µs → batch 8.
        let t = autotune(&oracle(0.0, 1.0), Duration::from_micros(32), 64);
        assert_eq!(t.max_batch, 8);
        assert_eq!(t.max_wait, Duration::from_nanos(8_000));
    }

    #[test]
    fn respects_the_operator_batch_cap() {
        let t = autotune(&oracle(0.0, 1.0), Duration::from_micros(32), 4);
        assert_eq!(t.max_batch, 4);
        // window capped at predicted(4), not the larger budget share
        assert_eq!(t.max_wait, Duration::from_nanos(4_000));
    }

    #[test]
    fn tight_budget_degrades_to_single_item_batches() {
        let t = autotune(&oracle(0.0, 1.0), Duration::from_micros(2), 64);
        assert_eq!(t.max_batch, 1);
        // predicted(1) = 1000 ns > share (500 ns) → window = share
        assert_eq!(t.max_wait, Duration::from_nanos(500));
    }

    #[test]
    fn tuned_policy_leaves_half_budget_headroom() {
        for budget_us in [4u64, 32, 100, 25_000] {
            let budget = Duration::from_micros(budget_us);
            let o = oracle(2_000.0, 1.0);
            let t = autotune(&o, budget, 64);
            let spent = o
                .predicted_service_nanos(t.max_batch)
                .max(t.max_wait.as_nanos() as u64)
                * 2;
            // only guaranteed once batch 1 fits the share at all
            if o.min_service_nanos() <= budget.as_nanos() as u64 / 4 {
                assert!(
                    o.predicted_service_nanos(t.max_batch) + t.max_wait.as_nanos() as u64
                        <= budget.as_nanos() as u64 / 2,
                    "budget {budget_us}µs: headroom violated ({spent})"
                );
            }
        }
    }
}
