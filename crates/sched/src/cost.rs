//! The cost oracle: exact per-item op counts from a compiled plan's
//! introspection view, fitted to measured time by a short warmup.
//!
//! Counting reuses the paper's accounting verbatim: a fused
//! conv+pool step is priced by [`mlcnn_core::opcount::mlcnn_layer_counts`]
//! on the geometry reconstructed from the step (RME + LAR/GAR reuse),
//! and a plain conv by the dense formula — so the oracle's totals are
//! *exactly* the `opcount` totals, per step, not an approximation
//! (`tests` in `mlcnn-serve` pin this across the zoo × precisions).
//!
//! Predicted service time is an affine model over the batch:
//!
//! ```text
//! predicted(b) = base + b · flops_item · nanos_per_flop
//! ```
//!
//! with `base ≥ 0` and `nanos_per_flop > 0`, so the prediction is
//! monotone nondecreasing in `b` *by construction* — the property the
//! EDF/admission machinery relies on. Calibration measures the plan at
//! batch 1 and at `max_batch` and solves for the two coefficients; the
//! uncalibrated [`CostOracle::analytic`] form uses a nominal scalar-kernel
//! throughput and is what lints and tests use when running the plan is
//! not an option.

use mlcnn_check::{OpView, PlanView, StepView};
use mlcnn_core::opcount::{mlcnn_layer_counts, OpCounts};
use mlcnn_core::{ExecutionPlan, Workspace};
use mlcnn_nn::zoo::{ConvLayerGeom, PoolAfter};
use mlcnn_tensor::{Shape4, Tensor};
use std::time::Instant;

/// Nominal cost of one FLOP on the scalar kernels, in nanoseconds
/// (≈1 GFLOP/s — deliberately conservative for an uncalibrated oracle).
pub const ANALYTIC_NANOS_PER_FLOP: f64 = 1.0;

/// Nominal fixed dispatch overhead per batch, in nanoseconds.
pub const ANALYTIC_BASE_NANOS: f64 = 2_000.0;

/// Floor on the fitted marginal cost: keeps the prediction strictly
/// increasing even when a noisy warmup measures a flat (or inverted)
/// batch curve.
const MIN_NANOS_PER_FLOP: f64 = 1e-6;

/// Timed repetitions per calibration point (median taken).
const CALIBRATION_REPS: usize = 3;

/// Exact per-item op counts of one plan step.
///
/// Fused steps go through the paper's fused accounting
/// ([`mlcnn_layer_counts`] on the reconstructed [`ConvLayerGeom`]); all
/// other ops use the dense conventions `opcount` establishes (conv/linear
/// count `taps` adds per output — `taps−1` accumulations plus one bias).
pub fn step_counts(step: &StepView) -> OpCounts {
    let in_s = step.in_shape;
    let out_s = step.out_shape;
    let out_len = (out_s.c * out_s.h * out_s.w) as u64;
    match &step.op {
        OpView::Fused {
            k,
            stride,
            pad,
            pool,
            ..
        } => mlcnn_layer_counts(&fused_geom(step, *k, *stride, *pad, *pool)),
        OpView::Conv { k, stride, pad, .. } => {
            // dense conv, no activation/pool (those are separate steps)
            let g = ConvLayerGeom {
                name: String::new(),
                in_ch: in_s.c,
                out_ch: out_s.c,
                in_h: in_s.h,
                in_w: in_s.w,
                k: *k,
                stride: *stride,
                pad: *pad,
                pool: None,
            };
            let out_pos = (g.out_h() * g.out_w()) as u64;
            let taps = (g.in_ch * g.k * g.k) as u64;
            OpCounts {
                mults: out_pos * g.out_ch as u64 * taps,
                adds: out_pos * g.out_ch as u64 * taps,
                divs: 0,
                cmps: 0,
            }
        }
        OpView::ReLU => OpCounts {
            cmps: (in_s.c * in_s.h * in_s.w) as u64,
            ..OpCounts::zero()
        },
        // sigmoid: one add + one divide per element, plus a small fixed
        // polynomial cost for exp (counted as multiplications)
        OpView::Sigmoid => {
            let n = (in_s.c * in_s.h * in_s.w) as u64;
            OpCounts {
                mults: 4 * n,
                adds: n,
                divs: n,
                cmps: 0,
            }
        }
        OpView::AvgPool { window, .. } => {
            let win = (window * window) as u64;
            OpCounts {
                adds: out_len * (win - 1),
                divs: out_len,
                ..OpCounts::zero()
            }
        }
        OpView::MaxPool { window, .. } => {
            let win = (window * window) as u64;
            OpCounts {
                cmps: out_len * (win - 1),
                ..OpCounts::zero()
            }
        }
        OpView::Flatten => OpCounts::zero(),
        OpView::Linear {
            in_features,
            out_features,
            ..
        } => {
            let (inf, outf) = (*in_features as u64, *out_features as u64);
            OpCounts {
                mults: inf * outf,
                // per output: in−1 accumulations + 1 bias
                adds: inf * outf,
                divs: 0,
                cmps: 0,
            }
        }
    }
}

/// Reconstruct the conv+pool geometry of a fused step for the `opcount`
/// formulas (fused steps always carry a non-overlapping average pool —
/// `window == stride` — per the fusion legality gate).
fn fused_geom(step: &StepView, k: usize, stride: usize, pad: usize, pool: usize) -> ConvLayerGeom {
    ConvLayerGeom {
        name: String::new(),
        in_ch: step.in_shape.c,
        out_ch: step.out_shape.c,
        in_h: step.in_shape.h,
        in_w: step.in_shape.w,
        k,
        stride,
        pad,
        pool: Some(PoolAfter {
            window: pool,
            stride: pool,
            avg: true,
        }),
    }
}

/// Exact per-item op counts of a whole plan: the sum of
/// [`step_counts`] over every step.
pub fn plan_counts(view: &PlanView) -> OpCounts {
    let mut total = OpCounts::zero();
    for step in &view.steps {
        total += step_counts(step);
    }
    total
}

/// Predicted service time as a function of batch size, anchored on the
/// plan's exact op counts. See the [module docs](self) for the model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostOracle {
    per_item: OpCounts,
    base_nanos: f64,
    nanos_per_flop: f64,
    calibrated: bool,
}

impl CostOracle {
    /// Uncalibrated oracle over a plan view: exact counts, nominal
    /// scalar-kernel throughput. Deterministic — what lints and
    /// compile-time tooling use.
    pub fn analytic(view: &PlanView) -> CostOracle {
        CostOracle {
            per_item: plan_counts(view),
            base_nanos: ANALYTIC_BASE_NANOS,
            nanos_per_flop: ANALYTIC_NANOS_PER_FLOP,
            calibrated: false,
        }
    }

    /// Oracle from explicit coefficients — for tests and for callers
    /// that fitted (or chose) the model elsewhere. The marginal cost is
    /// clamped to the same positive floor calibration uses, so the
    /// monotonicity guarantee holds for any input.
    pub fn with_coefficients(
        per_item: OpCounts,
        base_nanos: f64,
        nanos_per_flop: f64,
    ) -> CostOracle {
        CostOracle {
            per_item,
            base_nanos: base_nanos.max(0.0),
            nanos_per_flop: nanos_per_flop.max(MIN_NANOS_PER_FLOP),
            calibrated: false,
        }
    }

    /// Calibrated oracle: run a short measured warmup on `plan` (batch 1
    /// and batch `max_batch`, [`CALIBRATION_REPS`] reps each, medians)
    /// and fit the affine model to the measurements. INT8 plans execute
    /// per item, so their fitted marginal cost naturally reflects that.
    ///
    /// Fails only if the plan cannot run a zero input (which the P-code
    /// verifier would already have denied).
    pub fn calibrated(plan: &ExecutionPlan, max_batch: usize) -> Result<CostOracle, String> {
        let per_item = plan_counts(&plan.view());
        let flops_item = (per_item.flops().max(1)) as f64;
        let b = max_batch.max(1);
        let mut ws = Workspace::for_plan(plan, b);

        let t1 = measure_nanos(plan, &mut ws, 1)?;
        let (base, slope) = if b > 1 {
            let tb = measure_nanos(plan, &mut ws, b)?;
            if tb > t1 {
                let slope = (tb - t1) as f64 / ((b - 1) as f64 * flops_item);
                let base = (t1 as f64 - slope * flops_item).max(0.0);
                (base, slope)
            } else {
                // flat/inverted measurement (noise): fall back to a pure
                // per-item model, still monotone
                (0.0, t1 as f64 / flops_item)
            }
        } else {
            (0.0, t1 as f64 / flops_item)
        };
        Ok(CostOracle {
            per_item,
            base_nanos: base,
            nanos_per_flop: slope.max(MIN_NANOS_PER_FLOP),
            calibrated: true,
        })
    }

    /// The exact per-item op counts the oracle prices from.
    pub fn per_item_counts(&self) -> OpCounts {
        self.per_item
    }

    /// Whether the coefficients came from a measured warmup.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Exact FLOPs of a batch of `batch` items: `batch · flops(1)` —
    /// the plan's compute is strictly linear in the batch.
    pub fn flops(&self, batch: usize) -> u64 {
        self.per_item.flops().saturating_mul(batch as u64)
    }

    /// Predicted service time for one batch of `batch` items, in
    /// nanoseconds. Monotone nondecreasing in `batch`.
    pub fn predicted_service_nanos(&self, batch: usize) -> u64 {
        let b = batch.max(1) as f64;
        let nanos = self.base_nanos + b * self.per_item.flops().max(1) as f64 * self.nanos_per_flop;
        nanos.min(u64::MAX as f64) as u64
    }

    /// Predicted service time of a single item — the floor below which no
    /// latency budget is satisfiable ([`crate::slo`] `D003`).
    pub fn min_service_nanos(&self) -> u64 {
        self.predicted_service_nanos(1)
    }

    /// The batch-latency curve `predicted(1..=max_batch)` the auto-tuner
    /// walks.
    pub fn batch_latency_curve(&self, max_batch: usize) -> Vec<u64> {
        (1..=max_batch.max(1))
            .map(|b| self.predicted_service_nanos(b))
            .collect()
    }
}

/// Median wall time of `CALIBRATION_REPS` forwards at `batch`, after one
/// discarded warmup run.
fn measure_nanos(plan: &ExecutionPlan, ws: &mut Workspace, batch: usize) -> Result<u64, String> {
    let item = plan.input_shape();
    let input = Tensor::<f32>::zeros(Shape4::new(batch, item.c, item.h, item.w));
    plan.forward(&input, ws)
        .map_err(|e| format!("calibration forward failed at batch {batch}: {e}"))?;
    let mut samples = Vec::with_capacity(CALIBRATION_REPS);
    for _ in 0..CALIBRATION_REPS {
        let t = Instant::now();
        plan.forward(&input, ws)
            .map_err(|e| format!("calibration forward failed at batch {batch}: {e}"))?;
        samples.push(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    samples.sort_unstable();
    Ok(samples[samples.len() / 2].max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_check::{ParamProfile, StepView};

    fn fused_step() -> StepView {
        // 4→8 ch, 3x3 conv on 18x18, 2x2 avg pool — mirrors
        // opcount::tests::simple_geom(3, 18, 4, 8, 2)
        StepView {
            op: OpView::Fused {
                k: 3,
                stride: 1,
                pad: 0,
                pool: 2,
                relu: true,
                weight: ParamProfile::of(&[]),
                bias: ParamProfile::of(&[]),
                channels: Vec::new(),
            },
            in_shape: Shape4::new(1, 4, 18, 18),
            out_shape: Shape4::new(1, 8, 8, 8),
            round_after: false,
        }
    }

    #[test]
    fn fused_step_counts_match_opcount_exactly() {
        let step = fused_step();
        let got = step_counts(&step);
        let want = mlcnn_layer_counts(&ConvLayerGeom {
            name: "t".into(),
            in_ch: 4,
            out_ch: 8,
            in_h: 18,
            in_w: 18,
            k: 3,
            stride: 1,
            pad: 0,
            pool: Some(PoolAfter {
                window: 2,
                stride: 2,
                avg: true,
            }),
        });
        assert_eq!(got, want);
    }

    #[test]
    fn linear_and_relu_counts_follow_dense_conventions() {
        let lin = StepView {
            op: OpView::Linear {
                in_features: 120,
                out_features: 10,
                weight: ParamProfile::of(&[]),
                bias: ParamProfile::of(&[]),
                channels: Vec::new(),
            },
            in_shape: Shape4::new(1, 1, 1, 120),
            out_shape: Shape4::new(1, 1, 1, 10),
            round_after: false,
        };
        let c = step_counts(&lin);
        assert_eq!(c.mults, 1200);
        assert_eq!(c.adds, 1200);
        let relu = StepView {
            op: OpView::ReLU,
            in_shape: Shape4::new(1, 2, 3, 4),
            out_shape: Shape4::new(1, 2, 3, 4),
            round_after: false,
        };
        assert_eq!(step_counts(&relu).cmps, 24);
        assert_eq!(step_counts(&relu).flops(), 0);
    }

    fn view_of(steps: Vec<StepView>) -> PlanView {
        PlanView {
            precision: mlcnn_quant::Precision::Fp32,
            input_shape: steps[0].in_shape,
            output_shape: steps[steps.len() - 1].out_shape,
            buf_item_len: 0,
            cols_item_len: 0,
            steps,
        }
    }

    #[test]
    fn analytic_prediction_is_monotone_and_linear_in_flops() {
        let o = CostOracle::analytic(&view_of(vec![fused_step()]));
        let curve = o.batch_latency_curve(16);
        for w in curve.windows(2) {
            assert!(w[0] <= w[1], "curve not monotone: {curve:?}");
        }
        for b in 1..=16usize {
            assert_eq!(o.flops(b), b as u64 * o.per_item_counts().flops());
        }
        assert!(!o.is_calibrated());
        assert_eq!(o.min_service_nanos(), o.predicted_service_nanos(1));
    }

    #[test]
    fn plan_counts_sum_steps() {
        let v = view_of(vec![fused_step(), fused_step()]);
        let one = step_counts(&v.steps[0]);
        let total = plan_counts(&v);
        assert_eq!(total.mults, 2 * one.mults);
        assert_eq!(total.adds, 2 * one.adds);
    }
}
