//! Per-layer operation counting: dense CNN vs MLCNN (paper Fig. 14, and
//! the compute side of Figs. 13/15).
//!
//! Counts follow the paper's accelerator accounting:
//!
//! * The dense baseline executes `conv → ReLU → pool` literally.
//! * MLCNN executes the fused operator with the weight-stationary
//!   dataflow: inputs stream through the AR unit once per *output
//!   channel*, so block sums are rebuilt per output-channel pass but
//!   shared (LAR within an output, GAR along a pooled row) inside the
//!   pass. Channel accumulation and bias are counted once per pooled
//!   output.
//! * Layers without a trailing pool run unchanged on MLCNN (the
//!   accelerator's regular mode) and contribute identical counts.

use crate::reuse_sim::{pooled_row_width_p, simulate_row, ReuseMode};
use mlcnn_nn::zoo::{ConvLayerGeom, ModelDesc};
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Operation tallies for one inference (batch 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounts {
    /// Multiplications.
    pub mults: u64,
    /// Additions.
    pub adds: u64,
    /// Divisions (pooling averages; shifts in hardware).
    pub divs: u64,
    /// Comparisons (ReLU / max pooling).
    pub cmps: u64,
}

impl OpCounts {
    /// Zero counts.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Multiplications + additions (the paper's "FLOPs").
    pub fn flops(&self) -> u64 {
        self.mults + self.adds
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.mults += rhs.mults;
        self.adds += rhs.adds;
        self.divs += rhs.divs;
        self.cmps += rhs.cmps;
    }
}

/// Dense (baseline) op counts for one conv layer, including its
/// activation and trailing pool if present.
pub fn dense_layer_counts(g: &ConvLayerGeom) -> OpCounts {
    let out_pos = (g.out_h() * g.out_w()) as u64;
    let oc = g.out_ch as u64;
    let taps = (g.in_ch * g.k * g.k) as u64;
    let mut c = OpCounts {
        mults: out_pos * oc * taps,
        // per conv output: taps−1 accumulation adds + 1 bias add
        adds: out_pos * oc * taps,
        divs: 0,
        cmps: out_pos * oc, // ReLU on the conv output
    };
    if let Some(p) = g.pool {
        let ph = (g.out_h() - p.window) / p.stride + 1;
        let pw = (g.out_w() - p.window) / p.stride + 1;
        let pooled = (ph * pw) as u64 * oc;
        let win = (p.window * p.window) as u64;
        if p.avg {
            c.adds += pooled * (win - 1);
            c.divs += pooled;
        } else {
            c.cmps += pooled * (win - 1);
        }
    }
    c
}

/// MLCNN op counts for one conv layer: fused when a pool follows,
/// otherwise identical to the dense layer (regular mode).
pub fn mlcnn_layer_counts(g: &ConvLayerGeom) -> OpCounts {
    let Some(p) = g.pool else {
        return dense_layer_counts(g);
    };
    // Only the non-overlapping window==stride case is fused (the paper's
    // hardware); anything else falls back to regular mode.
    if p.window != p.stride || !p.avg {
        return dense_layer_counts(g);
    }
    fused_layer_counts(g, p.window, ReuseMode::Both)
}

/// Fused-layer counts under a specific reuse mode (the ablation knob:
/// `None` isolates RME, `Lar`/`Gar` isolate each reuse, `Both` is MLCNN).
pub fn fused_layer_counts(g: &ConvLayerGeom, pool: usize, mode: ReuseMode) -> OpCounts {
    let padded = g.in_h + 2 * g.pad; // square inputs throughout the zoo
    let rows = pooled_rows(g, pool) as u64;
    let cols = pooled_row_width_p(g.k, padded, g.stride, pool) as u64;
    let pooled = rows * cols;
    let oc = g.out_ch as u64;
    let ic = g.in_ch as u64;
    let k2 = (g.k * g.k) as u64;

    // block sums: per output channel pass, per input channel, per row
    let row = simulate_row(g.k, padded, g.stride, pool, mode);
    let block_adds = oc * ic * rows * row.block_adds;
    // channel-wide major accumulation: ic·K²−1 adds per pooled output,
    // plus one bias add
    let major_adds = pooled * oc * (ic * k2 - 1 + 1);

    OpCounts {
        mults: pooled * oc * ic * k2,
        adds: block_adds + major_adds,
        divs: pooled * oc,
        cmps: pooled * oc, // ReLU after pooling
    }
}

fn pooled_rows(g: &ConvLayerGeom, pool: usize) -> usize {
    let conv_h = g.out_h();
    if conv_h < pool {
        0
    } else {
        (conv_h - pool) / pool + 1
    }
}

/// Reduction summary for one layer (Fig. 14's two bar groups).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReduction {
    /// Layer label.
    pub name: String,
    /// Multiplication reduction in percent.
    pub mult_reduction_pct: f64,
    /// Addition reduction in percent.
    pub add_reduction_pct: f64,
    /// Dense counts.
    pub dense: OpCounts,
    /// MLCNN counts.
    pub mlcnn: OpCounts,
}

/// Fig. 14: per-fused-layer FLOP reductions for a model.
pub fn model_reductions(model: &ModelDesc) -> Vec<LayerReduction> {
    model
        .fused_convs()
        .iter()
        .map(|g| {
            let dense = dense_layer_counts(g);
            let mlcnn = mlcnn_layer_counts(g);
            LayerReduction {
                name: g.name.clone(),
                mult_reduction_pct: 100.0 * (1.0 - mlcnn.mults as f64 / dense.mults as f64),
                add_reduction_pct: 100.0 * (1.0 - mlcnn.adds as f64 / dense.adds as f64),
                dense,
                mlcnn,
            }
        })
        .collect()
}

/// Whole-model op counts (all conv layers; FC layers contribute equally
/// to both variants and are excluded, as in the paper's figures).
pub fn model_counts(model: &ModelDesc, mlcnn: bool) -> OpCounts {
    let mut total = OpCounts::zero();
    for g in &model.convs {
        total += if mlcnn {
            mlcnn_layer_counts(g)
        } else {
            dense_layer_counts(g)
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_nn::zoo::{self, PoolAfter};

    fn simple_geom(k: usize, d: usize, in_ch: usize, out_ch: usize, pool: usize) -> ConvLayerGeom {
        ConvLayerGeom {
            name: "t".into(),
            in_ch,
            out_ch,
            in_h: d,
            in_w: d,
            k,
            stride: 1,
            pad: 0,
            pool: Some(PoolAfter {
                window: pool,
                stride: pool,
                avg: true,
            }),
        }
    }

    #[test]
    fn rme_eliminates_three_quarters_of_mults_for_2x2_pool() {
        let g = simple_geom(3, 18, 4, 8, 2);
        let dense = dense_layer_counts(&g);
        let fused = mlcnn_layer_counts(&g);
        let reduction = 1.0 - fused.mults as f64 / dense.mults as f64;
        assert!((reduction - 0.75).abs() < 1e-9, "{reduction}");
    }

    #[test]
    fn rme_reaches_98_percent_for_8x8_pool() {
        let g = simple_geom(3, 18, 4, 8, 8);
        let dense = dense_layer_counts(&g);
        let fused = mlcnn_layer_counts(&g);
        let reduction = 1.0 - fused.mults as f64 / dense.mults as f64;
        assert!(reduction > 0.98, "{reduction}");
    }

    #[test]
    fn one_by_one_layers_save_no_additions() {
        // the paper's DenseNet case: K=1 disables addition reuse.
        let g = simple_geom(1, 16, 32, 16, 2);
        let dense = dense_layer_counts(&g);
        let fused = mlcnn_layer_counts(&g);
        let reduction = 1.0 - fused.adds as f64 / dense.adds as f64;
        // the only additions saved are the pooling's own (3 per pooled
        // output, because bias is applied once instead of four times):
        // a ~2% rounding of the paper's "no addition is eliminated".
        assert!(
            reduction.abs() < 0.03,
            "1x1 addition reduction should be ~0, got {reduction}"
        );
        // ...while multiplications still drop 75%
        assert!((1.0 - fused.mults as f64 / dense.mults as f64 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn lenet_c2_addition_reduction_near_paper_value() {
        // Paper: "Convolutional layer 2 in LeNet-5 shows the greatest
        // addition reduction, 51.52%."
        let model = zoo::lenet5(10);
        let reds = model_reductions(&model);
        let c2 = reds.iter().find(|r| r.name == "C2").unwrap();
        assert!(
            (40.0..60.0).contains(&c2.add_reduction_pct),
            "LeNet C2 addition reduction {}",
            c2.add_reduction_pct
        );
        // and C2 beats C1 (larger relative reuse at smaller spatial extent)
        let c1 = reds.iter().find(|r| r.name == "C1").unwrap();
        assert!(c2.add_reduction_pct > 0.0 && c1.add_reduction_pct > 0.0);
    }

    #[test]
    fn lenet_has_the_highest_addition_reduction_among_models() {
        // Paper: LeNet-5 (5×5 filters) > VGG/GoogLeNet (3×3/1×1) >
        // DenseNet (1×1, zero).
        let best = |m: &ModelDesc| {
            model_reductions(m)
                .iter()
                .map(|r| r.add_reduction_pct)
                .fold(f64::MIN, f64::max)
        };
        let lenet = best(&zoo::lenet5(10));
        let vgg = best(&zoo::vgg16(10));
        let dense = best(&zoo::densenet121(10));
        assert!(lenet > vgg, "lenet {lenet} vs vgg {vgg}");
        assert!(vgg > dense, "vgg {vgg} vs densenet {dense}");
        assert!(dense.abs() < 2.0, "densenet should be ~0, got {dense}");
    }

    #[test]
    fn model_counts_mlcnn_always_leq_dense() {
        for model in zoo::evaluation_models(100) {
            let d = model_counts(&model, false);
            let m = model_counts(&model, true);
            assert!(m.mults <= d.mults, "{}", model.name);
            assert!(m.adds <= d.adds, "{}", model.name);
            assert!(m.flops() < d.flops(), "{}", model.name);
        }
    }

    #[test]
    fn unfused_layers_are_untouched() {
        let mut g = simple_geom(3, 18, 4, 8, 2);
        g.pool = None;
        assert_eq!(dense_layer_counts(&g), mlcnn_layer_counts(&g));
        // max pooling is not fused either
        g.pool = Some(PoolAfter {
            window: 2,
            stride: 2,
            avg: false,
        });
        assert_eq!(dense_layer_counts(&g), mlcnn_layer_counts(&g));
    }

    #[test]
    fn ablation_ordering_none_lar_gar_both() {
        let g = simple_geom(5, 20, 3, 6, 2);
        let none = fused_layer_counts(&g, 2, ReuseMode::None);
        let lar = fused_layer_counts(&g, 2, ReuseMode::Lar);
        let gar = fused_layer_counts(&g, 2, ReuseMode::Gar);
        let both = fused_layer_counts(&g, 2, ReuseMode::Both);
        assert!(lar.adds < none.adds);
        assert!(gar.adds < lar.adds, "GAR should beat LAR at this geometry");
        assert!(both.adds <= gar.adds);
        // RME is identical across reuse modes
        assert_eq!(none.mults, both.mults);
    }

    #[test]
    fn dense_counts_scale_with_geometry() {
        let small = dense_layer_counts(&simple_geom(3, 10, 2, 2, 2));
        let big = dense_layer_counts(&simple_geom(3, 20, 2, 2, 2));
        assert!(big.mults > 4 * small.mults / 2);
        assert!(big.flops() > small.flops());
    }

    #[test]
    fn fig14_shape_vgg_mult_reduction_is_75() {
        for r in model_reductions(&zoo::vgg16(10)) {
            assert!(
                (r.mult_reduction_pct - 75.0).abs() < 0.5,
                "{}: {}",
                r.name,
                r.mult_reduction_pct
            );
        }
    }

    #[test]
    fn fig14_shape_googlenet_has_98_percent_layers() {
        let reds = model_reductions(&zoo::googlenet(10));
        assert_eq!(reds.len(), 12);
        let max = reds
            .iter()
            .map(|r| r.mult_reduction_pct)
            .fold(f64::MIN, f64::max);
        assert!(max > 98.0, "GoogLeNet best mult reduction {max}");
    }
}
