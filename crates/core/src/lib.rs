//! # mlcnn-core
//!
//! The MLCNN contribution (Jiang et al., IPDPS 2022): cross-layer
//! cooperative optimization of convolution + activation + pooling.
//!
//! * [`reorder`] — the accuracy-preserving layer reordering pass
//!   (Section III): `ReLU → AvgPool` becomes `AvgPool → ReLU` as a pure
//!   [`mlcnn_nn::LayerSpec`] transformation, plus the All-Conv baseline
//!   transformation the paper compares against.
//! * [`fused`] — the fused convolution-pooling operator (Section IV,
//!   Algorithm 1): redundant multiplication elimination (RME) by weight
//!   factorization over the pooled block sums, with local (LAR) and global
//!   (GAR) addition reuse realized through shared half-addition and
//!   block-sum planes. Functionally equivalent to
//!   `relu(avg_pool(conv(x)))` — exactly, in integer arithmetic.
//! * [`analytic`] — Section V's closed-form addition/multiplication
//!   accounting: Equations (1)–(7) and the generators for Tables II–VI.
//! * [`reuse_sim`] — a memoized ground-truth simulator of the reuse
//!   schemes; the property-test anchor proving the closed forms.
//! * [`opcount`] — per-layer operation counting for whole models (dense
//!   CNN vs MLCNN), the substrate for Figs. 13–15.
//! * [`quantized`] — quantized-MLCNN evaluation (Fig. 12): run a trained
//!   network with weights and activations rounded through FP16 or DoReFa
//!   k-bit grids.
//! * [`plan`] — the compiled inference engine behind all of the above:
//!   an immutable, `Send + Sync` [`plan::ExecutionPlan`] with pre-resolved
//!   geometry and pre-transposed/pre-quantized weights, executing out of a
//!   reusable [`plan::Workspace`] arena with zero steady-state allocation.
//!   `FusedNetwork`, `Network::eval_plan`, and the quantized evaluation
//!   are thin adapters over it.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod content;
pub mod fused;
pub mod fused_net;
pub mod opcount;
pub mod plan;
pub mod quantized;
pub mod reorder;
pub mod reuse_sim;

pub use fused::{FusedConvPool, FusedScratch};
pub use fused_net::FusedNetwork;
pub use opcount::OpCounts;
pub use plan::{
    EvalPlan, ExecutionPlan, ParamHandle, PlanOptions, PooledWorkspace, SegmentKey, SegmentStats,
    SegmentStore, Workspace, WorkspacePool,
};
