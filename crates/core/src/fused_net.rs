//! Whole-model fused inference: compile a reordered, trained network into
//! an executable pipeline where every `conv → avg-pool [→ ReLU]` group
//! runs through the MLCNN fused operator, and everything else runs the
//! reference kernels.
//!
//! This is the deployment story of the paper: Section III reorders, the
//! accelerator of Section VI executes the fused groups in fused mode and
//! the rest in regular mode. [`FusedNetwork::compile`] performs the same
//! partitioning in software, so a trained `mlcnn_nn::Network` can be run
//! end-to-end with MLCNN arithmetic and checked for prediction
//! equivalence.

use crate::fused::FusedConvPool;
use crate::opcount::OpCounts;
use mlcnn_nn::LayerSpec;
use mlcnn_tensor::activation::{relu, sigmoid};
use mlcnn_tensor::conv::conv2d_im2col;
use mlcnn_tensor::linalg::{matmul, transpose};
use mlcnn_tensor::pool::{avg_pool2d, max_pool2d};
use mlcnn_tensor::shape::Shape2;
use mlcnn_tensor::{Result, Shape4, Tensor, TensorError};

/// One executable stage of the compiled pipeline.
pub enum FusedStage {
    /// A fused conv + avg-pool (+ optional ReLU) group.
    Fused(FusedConvPool<f32>),
    /// A plain convolution (regular mode).
    Conv {
        /// Weights `M×N×K×K`.
        weight: Tensor<f32>,
        /// Per-output-channel bias.
        bias: Vec<f32>,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// ReLU activation.
    ReLU,
    /// Sigmoid activation.
    Sigmoid,
    /// Average pooling (not fusable: overlapping or after non-conv).
    AvgPool {
        /// Window.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Window.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Flatten to a feature vector.
    Flatten,
    /// Fully connected layer.
    Linear {
        /// Weights `out×in` (flat, row-major).
        weight: Vec<f32>,
        /// Bias, one per output.
        bias: Vec<f32>,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl FusedStage {
    /// Human-readable stage kind.
    pub fn kind(&self) -> &'static str {
        match self {
            FusedStage::Fused(_) => "fused-conv-pool",
            FusedStage::Conv { .. } => "conv",
            FusedStage::ReLU => "relu",
            FusedStage::Sigmoid => "sigmoid",
            FusedStage::AvgPool { .. } => "avgpool",
            FusedStage::MaxPool { .. } => "maxpool",
            FusedStage::Flatten => "flatten",
            FusedStage::Linear { .. } => "linear",
        }
    }
}

/// A compiled fused-inference pipeline.
pub struct FusedNetwork {
    stages: Vec<FusedStage>,
    input_shape: Shape4,
}

impl FusedNetwork {
    /// Compile a *sequential* spec list plus its trained parameters (in
    /// `Network::export_params` order: conv/linear layers contribute
    /// `[weight, bias]` pairs in execution order).
    ///
    /// Patterns fused: `Conv, AvgPool{w==s}` and
    /// `Conv, AvgPool{w==s}, ReLU` (the post-reorder form), and
    /// `Conv, GlobalAvgPool [ , ReLU]` when the conv output is square.
    /// Composite specs (inception / dense blocks) are rejected — the
    /// accelerator compiles branch pipelines separately.
    pub fn compile(
        specs: &[LayerSpec],
        params: &[Tensor<f32>],
        input: Shape4,
    ) -> Result<FusedNetwork> {
        // static analysis first: shape propagation plus the sequential-only
        // and no-batch-norm constraints, with one diagnostic per problem
        if let Err(diags) = mlcnn_check::check_compile(specs, input) {
            let summary = diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            return Err(TensorError::BadGeometry { reason: summary });
        }
        let mut stages = Vec::new();
        let mut shape = input;
        let mut p = 0usize; // parameter cursor
        let mut i = 0usize;

        let take_pair = |p: &mut usize| -> Result<(Tensor<f32>, Tensor<f32>)> {
            if *p + 2 > params.len() {
                return Err(TensorError::BadGeometry {
                    reason: "parameter list exhausted during compile".into(),
                });
            }
            let w = params[*p].clone();
            let b = params[*p + 1].clone();
            *p += 2;
            Ok((w, b))
        };

        while i < specs.len() {
            match &specs[i] {
                LayerSpec::Conv {
                    out_ch,
                    k,
                    stride,
                    pad,
                } => {
                    let (w, b) = take_pair(&mut p)?;
                    if w.shape() != Shape4::new(*out_ch, shape.c, *k, *k) {
                        return Err(TensorError::ShapeMismatch {
                            left: w.shape(),
                            right: Shape4::new(*out_ch, shape.c, *k, *k),
                            op: "compile conv weights",
                        });
                    }
                    let conv_out =
                        mlcnn_tensor::ConvGeometry::new(shape.h, shape.w, *k, *k, *stride, *pad)?;
                    // look ahead for a fusable pool
                    let pool = match specs.get(i + 1) {
                        Some(LayerSpec::AvgPool { window, stride: ps }) if window == ps => {
                            Some(*window)
                        }
                        Some(LayerSpec::GlobalAvgPool) if conv_out.out_h == conv_out.out_w => {
                            Some(conv_out.out_h)
                        }
                        _ => None,
                    };
                    match pool {
                        Some(window) if window <= conv_out.out_h && window <= conv_out.out_w => {
                            let with_relu = matches!(specs.get(i + 2), Some(LayerSpec::ReLU));
                            let fused = FusedConvPool::new(w, b.into_vec(), *stride, *pad, window)?
                                .with_relu(with_relu);
                            shape = fused.out_shape(shape)?;
                            stages.push(FusedStage::Fused(fused));
                            i += if with_relu { 3 } else { 2 };
                            continue;
                        }
                        _ => {
                            shape = Shape4::new(shape.n, *out_ch, conv_out.out_h, conv_out.out_w);
                            stages.push(FusedStage::Conv {
                                weight: w,
                                bias: b.into_vec(),
                                stride: *stride,
                                pad: *pad,
                            });
                        }
                    }
                }
                LayerSpec::ReLU => stages.push(FusedStage::ReLU),
                LayerSpec::Sigmoid => stages.push(FusedStage::Sigmoid),
                LayerSpec::AvgPool { window, stride } => {
                    let g = mlcnn_tensor::PoolGeometry::new(shape.h, shape.w, *window, *stride)?;
                    shape = Shape4::new(shape.n, shape.c, g.out_h, g.out_w);
                    stages.push(FusedStage::AvgPool {
                        window: *window,
                        stride: *stride,
                    });
                }
                LayerSpec::GlobalAvgPool => {
                    let w = shape.h;
                    let g = mlcnn_tensor::PoolGeometry::new(shape.h, shape.w, w, w)?;
                    shape = Shape4::new(shape.n, shape.c, g.out_h, g.out_w);
                    stages.push(FusedStage::AvgPool {
                        window: w,
                        stride: w,
                    });
                }
                LayerSpec::MaxPool { window, stride } => {
                    let g = mlcnn_tensor::PoolGeometry::new(shape.h, shape.w, *window, *stride)?;
                    shape = Shape4::new(shape.n, shape.c, g.out_h, g.out_w);
                    stages.push(FusedStage::MaxPool {
                        window: *window,
                        stride: *stride,
                    });
                }
                LayerSpec::Flatten => {
                    shape = Shape4::new(shape.n, 1, 1, shape.c * shape.h * shape.w);
                    stages.push(FusedStage::Flatten);
                }
                LayerSpec::Linear { out } => {
                    let (w, b) = take_pair(&mut p)?;
                    let in_features = shape.c * shape.h * shape.w;
                    if w.len() != out * in_features {
                        return Err(TensorError::BadGeometry {
                            reason: format!(
                                "linear weight length {} != {out}x{in_features}",
                                w.len()
                            ),
                        });
                    }
                    shape = Shape4::new(shape.n, 1, 1, *out);
                    stages.push(FusedStage::Linear {
                        weight: w.into_vec(),
                        bias: b.into_vec(),
                        in_features,
                        out_features: *out,
                    });
                }
                LayerSpec::Dropout { .. } => {
                    // dropout is identity at inference; skip it
                }
                LayerSpec::Inception { .. }
                | LayerSpec::DenseBlock { .. }
                | LayerSpec::Residual { .. } => {
                    return Err(TensorError::BadGeometry {
                        reason: "FusedNetwork::compile handles sequential pipelines only".into(),
                    });
                }
                LayerSpec::BatchNorm => {
                    return Err(TensorError::BadGeometry {
                        reason: "fold batch norm into the conv weights before compiling".into(),
                    });
                }
            }
            i += 1;
        }
        if p != params.len() {
            return Err(TensorError::BadGeometry {
                reason: format!(
                    "{} unused parameter tensors after compile",
                    params.len() - p
                ),
            });
        }
        Ok(FusedNetwork {
            stages,
            input_shape: input,
        })
    }

    /// The compiled stages.
    pub fn stages(&self) -> &[FusedStage] {
        &self.stages
    }

    /// Number of fused conv-pool groups in the pipeline.
    pub fn fused_stage_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, FusedStage::Fused(_)))
            .count()
    }

    /// Expected single-item input shape.
    pub fn input_shape(&self) -> Shape4 {
        self.input_shape
    }

    /// Run inference.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>> {
        let mut x = input.clone();
        for stage in &self.stages {
            x = match stage {
                FusedStage::Fused(f) => f.forward(&x)?,
                FusedStage::Conv {
                    weight,
                    bias,
                    stride,
                    pad,
                } => conv2d_im2col(&x, weight, Some(bias), *stride, *pad)?,
                FusedStage::ReLU => relu(&x),
                FusedStage::Sigmoid => sigmoid(&x),
                FusedStage::AvgPool { window, stride } => avg_pool2d(&x, *window, *stride)?,
                FusedStage::MaxPool { window, stride } => max_pool2d(&x, *window, *stride)?.values,
                FusedStage::Flatten => {
                    let s = x.shape();
                    x.reshape(Shape4::new(s.n, 1, 1, s.c * s.h * s.w))?
                }
                FusedStage::Linear {
                    weight,
                    bias,
                    in_features,
                    out_features,
                } => {
                    let s = x.shape();
                    let feats = s.c * s.h * s.w;
                    if feats != *in_features {
                        return Err(TensorError::BadGeometry {
                            reason: format!("linear expects {in_features} features, got {feats}"),
                        });
                    }
                    let w_t = transpose(weight, Shape2::new(*out_features, *in_features));
                    let mut y = matmul(x.as_slice(), &w_t, s.n, *in_features, *out_features);
                    for bi in 0..s.n {
                        for (o, bv) in bias.iter().enumerate() {
                            y[bi * out_features + o] += bv;
                        }
                    }
                    Tensor::from_vec(Shape4::new(s.n, 1, 1, *out_features), y)?
                }
            };
        }
        Ok(x)
    }

    /// Aggregate op counts of the conv stages for a given input: the
    /// MLCNN bill (fused where compiled fused) and the dense-CNN bill for
    /// the same architecture.
    pub fn conv_op_counts(&self) -> (OpCounts, OpCounts) {
        use mlcnn_nn::zoo::{ConvLayerGeom, PoolAfter};
        let mut mlcnn = OpCounts::zero();
        let mut dense = OpCounts::zero();
        let mut shape = self.input_shape;
        for stage in &self.stages {
            match stage {
                FusedStage::Fused(f) => {
                    let geom = f.geometry(shape).expect("compiled shapes are valid");
                    let ws = {
                        // reconstruct the layer geometry for the counters
                        ConvLayerGeom {
                            name: "stage".into(),
                            in_ch: shape.c,
                            out_ch: f.out_shape(shape).expect("valid").c,
                            in_h: shape.h,
                            in_w: shape.w,
                            k: geom.k,
                            stride: geom.conv_stride,
                            pad: geom.pad,
                            pool: Some(PoolAfter {
                                window: geom.pool,
                                stride: geom.pool,
                                avg: true,
                            }),
                        }
                    };
                    mlcnn += crate::opcount::mlcnn_layer_counts(&ws);
                    dense += crate::opcount::dense_layer_counts(&ws);
                    shape = f.out_shape(shape).expect("valid");
                }
                FusedStage::Conv {
                    weight,
                    stride,
                    pad,
                    ..
                } => {
                    let ws = weight.shape();
                    let g = ConvLayerGeom {
                        name: "stage".into(),
                        in_ch: shape.c,
                        out_ch: ws.n,
                        in_h: shape.h,
                        in_w: shape.w,
                        k: ws.h,
                        stride: *stride,
                        pad: *pad,
                        pool: None,
                    };
                    let c = crate::opcount::dense_layer_counts(&g);
                    mlcnn += c;
                    dense += c;
                    shape = Shape4::new(shape.n, ws.n, g.out_h(), g.out_w());
                }
                FusedStage::AvgPool { window, stride } | FusedStage::MaxPool { window, stride } => {
                    let g = mlcnn_tensor::PoolGeometry::new(shape.h, shape.w, *window, *stride)
                        .expect("compiled shapes are valid");
                    shape = Shape4::new(shape.n, shape.c, g.out_h, g.out_w);
                }
                FusedStage::Flatten => {
                    shape = Shape4::new(shape.n, 1, 1, shape.c * shape.h * shape.w);
                }
                FusedStage::Linear { out_features, .. } => {
                    shape = Shape4::new(shape.n, 1, 1, *out_features);
                }
                FusedStage::ReLU | FusedStage::Sigmoid => {}
            }
        }
        (mlcnn, dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reorder::reorder_activation_pool;
    use mlcnn_nn::spec::build_network;
    use mlcnn_nn::zoo;
    use mlcnn_tensor::init;

    fn compile_lenet() -> (FusedNetwork, mlcnn_nn::Network, Shape4) {
        let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = build_network(&specs, input, 17).unwrap();
        let params = net.export_params();
        let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
        (fused, net, input)
    }

    #[test]
    fn compiled_lenet_has_two_fused_stages() {
        let (fused, _, _) = compile_lenet();
        assert_eq!(fused.fused_stage_count(), 2);
        let kinds: Vec<&str> = fused.stages().iter().map(FusedStage::kind).collect();
        // conv1+pool1 fused, conv2+pool2 fused, conv3 regular
        assert_eq!(kinds.iter().filter(|k| **k == "conv").count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == "linear").count(), 2);
    }

    #[test]
    fn fused_inference_matches_the_layer_network() {
        let (fused, mut net, input) = compile_lenet();
        let x = init::uniform(
            Shape4::new(2, input.c, input.h, input.w),
            -1.0,
            1.0,
            &mut init::rng(3),
        );
        let a = fused.forward(&x).unwrap();
        let b = net.forward(&x).unwrap();
        assert_eq!(a.shape(), b.shape());
        assert!(
            a.approx_eq(&b, 1e-3),
            "fused net diverges: {}",
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn vgg_mini_compiles_and_matches() {
        let specs = reorder_activation_pool(&zoo::vgg_mini_spec(3, 10)).specs;
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = build_network(&specs, input, 23).unwrap();
        let params = net.export_params();
        let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
        assert_eq!(fused.fused_stage_count(), 3);
        let x = init::uniform(input, -1.0, 1.0, &mut init::rng(4));
        let a = fused.forward(&x).unwrap();
        let b = net.forward(&x).unwrap();
        assert!(a.approx_eq(&b, 1e-3));
    }

    #[test]
    fn op_counts_report_the_savings() {
        let (fused, _, _) = compile_lenet();
        let (mlcnn, dense) = fused.conv_op_counts();
        assert!(mlcnn.mults < dense.mults);
        assert!(mlcnn.adds < dense.adds);
        // LeNet's two fused layers save 75% of their mults; C3 is dense.
        let ratio = mlcnn.mults as f64 / dense.mults as f64;
        assert!(ratio < 0.7, "mult ratio {ratio}");
    }

    #[test]
    fn rejects_composite_specs() {
        let specs = zoo::googlenet_mini_spec(2, 10);
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = build_network(&specs, input, 1).unwrap();
        let params = net.export_params();
        assert!(FusedNetwork::compile(&specs, &params, input).is_err());
    }

    #[test]
    fn compile_errors_carry_diagnostic_codes() {
        let input = Shape4::new(1, 3, 8, 8);
        let expect_err = |specs: &[LayerSpec]| match FusedNetwork::compile(specs, &[], input) {
            Err(e) => e,
            Ok(_) => panic!("expected a compile error"),
        };
        // the static gate fires before any parameter is consumed
        let err = expect_err(&[LayerSpec::conv3(4), LayerSpec::BatchNorm]);
        assert!(err.to_string().contains("F005"), "{err}");
        let err = expect_err(&[zoo_conv_too_big()]);
        assert!(err.to_string().contains("S003"), "{err}");
    }

    fn zoo_conv_too_big() -> LayerSpec {
        LayerSpec::Conv {
            out_ch: 4,
            k: 64,
            stride: 1,
            pad: 0,
        }
    }

    #[test]
    fn rejects_leftover_or_missing_params() {
        let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = build_network(&specs, input, 17).unwrap();
        let mut params = net.export_params();
        params.push(params[0].clone());
        assert!(FusedNetwork::compile(&specs, &params, input).is_err());
        params.truncate(params.len() - 3);
        assert!(FusedNetwork::compile(&specs, &params, input).is_err());
    }

    #[test]
    fn global_pool_fuses_when_square() {
        let specs = vec![
            LayerSpec::conv3(4),
            LayerSpec::GlobalAvgPool,
            LayerSpec::ReLU,
            LayerSpec::Flatten,
            LayerSpec::Linear { out: 2 },
        ];
        let input = Shape4::new(1, 1, 8, 8);
        let mut net = build_network(&specs, input, 5).unwrap();
        let params = net.export_params();
        let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
        assert_eq!(fused.fused_stage_count(), 1);
        let x = init::uniform(input, -1.0, 1.0, &mut init::rng(6));
        let a = fused.forward(&x).unwrap();
        let b = net.forward(&x).unwrap();
        assert!(a.approx_eq(&b, 1e-4));
    }
}
