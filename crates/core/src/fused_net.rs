//! Whole-model fused inference: compile a reordered, trained network into
//! an executable pipeline where every `conv → avg-pool [→ ReLU]` group
//! runs through the MLCNN fused operator, and everything else runs the
//! reference kernels.
//!
//! This is the deployment story of the paper: Section III reorders, the
//! accelerator of Section VI executes the fused groups in fused mode and
//! the rest in regular mode. [`FusedNetwork::compile`] performs the same
//! partitioning in software, so a trained `mlcnn_nn::Network` can be run
//! end-to-end with MLCNN arithmetic and checked for prediction
//! equivalence.
//!
//! Since the introduction of [`crate::plan`], `FusedNetwork` is a thin
//! adapter: `compile` delegates to [`ExecutionPlan::compile`] (which does
//! the partitioning, pre-transposes Linear weights, and sizes the
//! workspace arena), and `forward` runs the plan. What remains here is the
//! stage *description* — weight-free [`FusedStage`] descriptors for
//! inspection and the fused-vs-dense op accounting of Figs. 13–15.

use crate::opcount::OpCounts;
use crate::plan::{ExecutionPlan, Op, PlanOptions, Workspace};
use mlcnn_nn::LayerSpec;
use mlcnn_tensor::{Result, Shape4, Tensor};

/// One stage of the compiled pipeline, as a weight-free descriptor. The
/// weights themselves live inside the backing [`ExecutionPlan`] (already
/// transposed/baked for execution); these descriptors exist for display,
/// stage accounting, and the op-count reports.
pub enum FusedStage {
    /// A fused conv + avg-pool (+ optional ReLU) group.
    Fused {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Kernel extent.
        k: usize,
        /// Convolution stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Pool window (equals the pool stride; non-overlapping).
        pool: usize,
    },
    /// A plain convolution (regular mode).
    Conv {
        /// Output channels.
        out_ch: usize,
        /// Kernel extent.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// ReLU activation.
    ReLU,
    /// Sigmoid activation.
    Sigmoid,
    /// Average pooling (not fusable: overlapping or after non-conv).
    AvgPool {
        /// Window.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Window.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Flatten to a feature vector.
    Flatten,
    /// Fully connected layer.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl FusedStage {
    /// Human-readable stage kind.
    pub fn kind(&self) -> &'static str {
        match self {
            FusedStage::Fused { .. } => "fused-conv-pool",
            FusedStage::Conv { .. } => "conv",
            FusedStage::ReLU => "relu",
            FusedStage::Sigmoid => "sigmoid",
            FusedStage::AvgPool { .. } => "avgpool",
            FusedStage::MaxPool { .. } => "maxpool",
            FusedStage::Flatten => "flatten",
            FusedStage::Linear { .. } => "linear",
        }
    }
}

/// A compiled fused-inference pipeline: stage descriptors over a backing
/// [`ExecutionPlan`].
pub struct FusedNetwork {
    plan: ExecutionPlan,
    stages: Vec<FusedStage>,
    input_shape: Shape4,
}

impl FusedNetwork {
    /// Compile a *sequential* spec list plus its trained parameters (in
    /// `Network::export_params` order: conv/linear layers contribute
    /// `[weight, bias]` pairs in execution order).
    ///
    /// Patterns fused: `Conv, AvgPool{w==s}` and
    /// `Conv, AvgPool{w==s}, ReLU` (the post-reorder form), and
    /// `Conv, GlobalAvgPool [ , ReLU]` when the conv output is square.
    /// Composite specs (inception / dense blocks) are rejected — the
    /// accelerator compiles branch pipelines separately.
    pub fn compile(
        specs: &[LayerSpec],
        params: &[Tensor<f32>],
        input: Shape4,
    ) -> Result<FusedNetwork> {
        let plan = ExecutionPlan::compile(specs, params, input, PlanOptions::default())?;
        let stages = plan
            .steps
            .iter()
            .map(|step| match &step.op {
                Op::Fused { geom, .. } => FusedStage::Fused {
                    in_ch: step.in_shape.c,
                    out_ch: step.out_shape.c,
                    k: geom.k,
                    stride: geom.conv_stride,
                    pad: geom.pad,
                    pool: geom.pool,
                },
                Op::Conv { weight, geom, .. } => FusedStage::Conv {
                    out_ch: weight.shape().n,
                    k: geom.k_h,
                    stride: geom.stride,
                    pad: geom.pad,
                },
                Op::ReLU => FusedStage::ReLU,
                Op::Sigmoid => FusedStage::Sigmoid,
                Op::AvgPool(g) => FusedStage::AvgPool {
                    window: g.window,
                    stride: g.stride,
                },
                Op::MaxPool(g) => FusedStage::MaxPool {
                    window: g.window,
                    stride: g.stride,
                },
                Op::Flatten => FusedStage::Flatten,
                Op::Linear {
                    in_features,
                    out_features,
                    ..
                } => FusedStage::Linear {
                    in_features: *in_features,
                    out_features: *out_features,
                },
            })
            .collect();
        Ok(FusedNetwork {
            plan,
            stages,
            input_shape: input,
        })
    }

    /// The compiled stage descriptors.
    pub fn stages(&self) -> &[FusedStage] {
        &self.stages
    }

    /// The backing execution plan (shareable across threads; pair it with
    /// a per-thread [`Workspace`] for allocation-free forwards).
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Number of fused conv-pool groups in the pipeline.
    pub fn fused_stage_count(&self) -> usize {
        self.plan.fused_op_count()
    }

    /// Expected single-item input shape.
    pub fn input_shape(&self) -> Shape4 {
        self.input_shape
    }

    /// Run inference. Allocates a transient workspace; use
    /// [`FusedNetwork::forward_with`] in loops to reuse one.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>> {
        let mut ws = Workspace::for_plan(&self.plan, input.shape().n);
        self.plan.forward(input, &mut ws)
    }

    /// Run inference out of a caller-owned workspace — zero steady-state
    /// allocation beyond the returned tensor.
    pub fn forward_with(&self, input: &Tensor<f32>, ws: &mut Workspace) -> Result<Tensor<f32>> {
        self.plan.forward(input, ws)
    }

    /// Aggregate op counts of the conv stages for a given input: the
    /// MLCNN bill (fused where compiled fused) and the dense-CNN bill for
    /// the same architecture.
    pub fn conv_op_counts(&self) -> (OpCounts, OpCounts) {
        use mlcnn_nn::zoo::{ConvLayerGeom, PoolAfter};
        let mut mlcnn = OpCounts::zero();
        let mut dense = OpCounts::zero();
        for step in &self.plan.steps {
            match &step.op {
                Op::Fused { geom, .. } => {
                    let g = ConvLayerGeom {
                        name: "stage".into(),
                        in_ch: step.in_shape.c,
                        out_ch: step.out_shape.c,
                        in_h: step.in_shape.h,
                        in_w: step.in_shape.w,
                        k: geom.k,
                        stride: geom.conv_stride,
                        pad: geom.pad,
                        pool: Some(PoolAfter {
                            window: geom.pool,
                            stride: geom.pool,
                            avg: true,
                        }),
                    };
                    mlcnn += crate::opcount::mlcnn_layer_counts(&g);
                    dense += crate::opcount::dense_layer_counts(&g);
                }
                Op::Conv { weight, geom, .. } => {
                    let g = ConvLayerGeom {
                        name: "stage".into(),
                        in_ch: step.in_shape.c,
                        out_ch: weight.shape().n,
                        in_h: step.in_shape.h,
                        in_w: step.in_shape.w,
                        k: geom.k_h,
                        stride: geom.stride,
                        pad: geom.pad,
                        pool: None,
                    };
                    let c = crate::opcount::dense_layer_counts(&g);
                    mlcnn += c;
                    dense += c;
                }
                _ => {}
            }
        }
        (mlcnn, dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reorder::reorder_activation_pool;
    use mlcnn_nn::spec::build_network;
    use mlcnn_nn::zoo;
    use mlcnn_tensor::init;

    fn compile_lenet() -> (FusedNetwork, mlcnn_nn::Network, Shape4) {
        let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = build_network(&specs, input, 17).unwrap();
        let params = net.export_params();
        let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
        (fused, net, input)
    }

    #[test]
    fn compiled_lenet_has_two_fused_stages() {
        let (fused, _, _) = compile_lenet();
        assert_eq!(fused.fused_stage_count(), 2);
        let kinds: Vec<&str> = fused.stages().iter().map(FusedStage::kind).collect();
        // conv1+pool1 fused, conv2+pool2 fused, conv3 regular
        assert_eq!(kinds.iter().filter(|k| **k == "conv").count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == "linear").count(), 2);
    }

    #[test]
    fn fused_inference_matches_the_layer_network() {
        let (fused, mut net, input) = compile_lenet();
        let x = init::uniform(
            Shape4::new(2, input.c, input.h, input.w),
            -1.0,
            1.0,
            &mut init::rng(3),
        );
        let a = fused.forward(&x).unwrap();
        let b = net.forward(&x).unwrap();
        assert_eq!(a.shape(), b.shape());
        assert!(
            a.approx_eq(&b, 1e-3),
            "fused net diverges: {}",
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn forward_with_reuses_one_workspace_across_calls() {
        let (fused, _, input) = compile_lenet();
        let x = init::uniform(
            Shape4::new(2, input.c, input.h, input.w),
            -1.0,
            1.0,
            &mut init::rng(9),
        );
        let baseline = fused.forward(&x).unwrap();
        let mut ws = Workspace::for_plan(fused.plan(), 2);
        let cap = ws.buffer_capacity();
        for _ in 0..3 {
            let y = fused.forward_with(&x, &mut ws).unwrap();
            assert_eq!(y, baseline);
        }
        assert_eq!(
            ws.buffer_capacity(),
            cap,
            "steady-state forward grew the arena"
        );
    }

    #[test]
    fn vgg_mini_compiles_and_matches() {
        let specs = reorder_activation_pool(&zoo::vgg_mini_spec(3, 10)).specs;
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = build_network(&specs, input, 23).unwrap();
        let params = net.export_params();
        let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
        assert_eq!(fused.fused_stage_count(), 3);
        let x = init::uniform(input, -1.0, 1.0, &mut init::rng(4));
        let a = fused.forward(&x).unwrap();
        let b = net.forward(&x).unwrap();
        assert!(a.approx_eq(&b, 1e-3));
    }

    #[test]
    fn op_counts_report_the_savings() {
        let (fused, _, _) = compile_lenet();
        let (mlcnn, dense) = fused.conv_op_counts();
        assert!(mlcnn.mults < dense.mults);
        assert!(mlcnn.adds < dense.adds);
        // LeNet's two fused layers save 75% of their mults; C3 is dense.
        let ratio = mlcnn.mults as f64 / dense.mults as f64;
        assert!(ratio < 0.7, "mult ratio {ratio}");
    }

    #[test]
    fn rejects_composite_specs() {
        let specs = zoo::googlenet_mini_spec(2, 10);
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = build_network(&specs, input, 1).unwrap();
        let params = net.export_params();
        assert!(FusedNetwork::compile(&specs, &params, input).is_err());
    }

    #[test]
    fn compile_errors_carry_diagnostic_codes() {
        let input = Shape4::new(1, 3, 8, 8);
        let expect_err = |specs: &[LayerSpec]| match FusedNetwork::compile(specs, &[], input) {
            Err(e) => e,
            Ok(_) => panic!("expected a compile error"),
        };
        // the static gate fires before any parameter is consumed
        let err = expect_err(&[LayerSpec::conv3(4), LayerSpec::BatchNorm]);
        assert!(err.to_string().contains("F005"), "{err}");
        let err = expect_err(&[zoo_conv_too_big()]);
        assert!(err.to_string().contains("S003"), "{err}");
    }

    fn zoo_conv_too_big() -> LayerSpec {
        LayerSpec::Conv {
            out_ch: 4,
            k: 64,
            stride: 1,
            pad: 0,
        }
    }

    #[test]
    fn rejects_leftover_or_missing_params() {
        let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = build_network(&specs, input, 17).unwrap();
        let mut params = net.export_params();
        params.push(params[0].clone());
        assert!(FusedNetwork::compile(&specs, &params, input).is_err());
        params.truncate(params.len() - 3);
        assert!(FusedNetwork::compile(&specs, &params, input).is_err());
    }

    #[test]
    fn global_pool_fuses_when_square() {
        let specs = vec![
            LayerSpec::conv3(4),
            LayerSpec::GlobalAvgPool,
            LayerSpec::ReLU,
            LayerSpec::Flatten,
            LayerSpec::Linear { out: 2 },
        ];
        let input = Shape4::new(1, 1, 8, 8);
        let mut net = build_network(&specs, input, 5).unwrap();
        let params = net.export_params();
        let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
        assert_eq!(fused.fused_stage_count(), 1);
        let x = init::uniform(input, -1.0, 1.0, &mut init::rng(6));
        let a = fused.forward(&x).unwrap();
        let b = net.forward(&x).unwrap();
        assert!(a.approx_eq(&b, 1e-4));
    }
}
