//! Section V closed forms: the paper's analytic model of addition reuse.
//!
//! Symbols follow the paper: `K` is the convolution filter extent, `S` the
//! convolution step (stride), `D` the input feature-map extent, and `N`
//! the number of elements in a row of the pooled feature map. Pooling is
//! the fused 2×2/stride-2 average pool throughout (the hardware's
//! divide-by-four case).
//!
//! Derivation notes (verified against every row of Tables II–VI and by the
//! exhaustive memoized simulator in [`crate::reuse_sim`]):
//!
//! * One pooled output factorizes as
//!   `4·P = Σ_{i,j} W[i,j] · G[i][j]` with the block sum
//!   `G[a][b] = I[a][b] + I[a][b+S] + I[a+S][b] + I[a+S][b+S]`.
//!   Without reuse each of the `K²` block sums costs 3 additions and the
//!   major accumulation costs `K²−1`: `4K²−1` total (Tables II–IV,
//!   "without" column).
//! * **LAR** shares the vertical *half additions*
//!   `HA[a][b] = I[a][b] + I[a+S][b]` within one output: the `K×K` block
//!   sums touch `K×(K+S)` distinct HA positions (for `S ≤ K`), so the cost
//!   is `K(K+S)` half additions + `K²` combines + `K²−1` majors
//!   `= K(2K+S) + K²−1` — Equation (1)'s counted form.
//! * **GAR** shares whole block sums across a row of `N` pooled outputs:
//!   the row touches `K×(D−S)` distinct block sums at 3 additions each
//!   plus `N(K²−1)` majors `= 3K(D−S) + N(K²−1)` — Equation (2)'s counted
//!   form.

use serde::{Deserialize, Serialize};

/// Pooled-row width: `N = ((D−K)/S + 1) / 2` (conv output columns, halved
/// by the 2×2 pool).
pub fn pooled_row_width(k: usize, d: usize, s: usize) -> usize {
    assert!(s > 0 && k > 0 && d >= k, "bad geometry k={k} d={d} s={s}");
    // conv output width, then floored halving by the 2-wide pool: a
    // trailing odd conv column is dropped, matching the hardware
    let conv_w = (d - k) / s + 1;
    conv_w / 2
}

/// Additions per pooled output without any reuse: `4K² − 1`.
///
/// ```
/// // Table II's first row: an 11x11 filter needs 483 additions
/// assert_eq!(mlcnn_core::analytic::adds_per_output_without(11), 483);
/// ```
pub fn adds_per_output_without(k: usize) -> u64 {
    4 * (k as u64) * (k as u64) - 1
}

/// Additions per pooled output with LAR: `K(2K+S) + K² − 1` (valid for
/// `S ≤ K`; beyond that no half addition is shared and the cost saturates
/// at the reuse-free `4K² − 1`).
///
/// ```
/// // Table II: LAR brings the 11x11 filter from 483 to 373 additions
/// assert_eq!(mlcnn_core::analytic::adds_per_output_with_lar(11, 1), 373);
/// ```
pub fn adds_per_output_with_lar(k: usize, s: usize) -> u64 {
    let (k64, s64) = (k as u64, s as u64);
    if s >= k {
        // no vertical overlap between the two half-addition column sets
        adds_per_output_without(k)
    } else {
        k64 * (2 * k64 + s64) + k64 * k64 - 1
    }
}

/// Equation (1)/(4): LAR addition reduction rate.
pub fn lar_reduction_rate(k: usize, s: usize) -> f64 {
    let without = adds_per_output_without(k) as f64;
    1.0 - adds_per_output_with_lar(k, s) as f64 / without
}

/// Additions per pooled-output *row* without reuse: `N(4K² − 1)`.
pub fn row_adds_without(k: usize, d: usize, s: usize) -> u64 {
    pooled_row_width(k, d, s) as u64 * adds_per_output_without(k)
}

/// Additions per pooled-output row with GAR: `3K(D−S) + N(K²−1)`.
///
/// ```
/// // Table IV: a 13x13 filter over a 28-wide input drops 5400 -> 2397
/// assert_eq!(mlcnn_core::analytic::row_adds_without(13, 28, 1), 5400);
/// assert_eq!(mlcnn_core::analytic::row_adds_with_gar(13, 28, 1), 2397);
/// ```
pub fn row_adds_with_gar(k: usize, d: usize, s: usize) -> u64 {
    let n = pooled_row_width(k, d, s) as u64;
    let (k64, d64, s64) = (k as u64, d as u64, s as u64);
    (3 * k64 * (d64 - s64)).min(n * 3 * k64 * k64) + n * (k64 * k64 - 1)
}

/// Exact GAR row cost from the distinct-block-sum count. The paper's
/// `3K(D−S)` block term assumes the conv output width `(D−K)/S+1` is even
/// (so the 2-wide pool consumes every conv column); this variant counts
/// the positions actually touched — `K` rows × `K + (N−1)·2S` columns
/// (or `N·K` disjoint columns when `2S ≥ K`) — and therefore matches the
/// memoized simulator on *every* geometry, not just the paper's grid.
pub fn row_adds_with_gar_exact(k: usize, d: usize, s: usize) -> u64 {
    let n = pooled_row_width(k, d, s) as u64;
    if n == 0 {
        return 0;
    }
    let (k64, s64) = (k as u64, s as u64);
    let g_cols = if k64 > 2 * s64 {
        k64 + (n - 1) * 2 * s64
    } else {
        n * k64
    };
    3 * k64 * g_cols + n * (k64 * k64 - 1)
}

/// Equation (2)/(5): GAR addition reduction rate for a row.
pub fn gar_reduction_rate(k: usize, d: usize, s: usize) -> f64 {
    let without = row_adds_without(k, d, s) as f64;
    1.0 - row_adds_with_gar(k, d, s) as f64 / without
}

/// Additions per pooled-output row with LAR *and* GAR: block sums are
/// shared across the row (GAR) and built from shared half additions
/// (LAR). The row touches `K+S` distinct HA rows × `D` columns and
/// `K×(D−S)`-bounded block-sum positions, plus the `N(K²−1)` majors.
pub fn row_adds_with_both(k: usize, d: usize, s: usize) -> u64 {
    let n = pooled_row_width(k, d, s) as u64;
    let (k64, d64, s64) = (k as u64, d as u64, s as u64);
    // Distinct half additions: rows i and i+S for i<K → min(K+S, 2K)
    // distinct rows, all D columns (bounded by what a fresh computation
    // would cost).
    let ha_rows = (k64 + s64).min(2 * k64);
    let ha = ha_rows * d64;
    // Distinct block sums: K rows × (D−S)-bounded columns, one combining
    // addition each given HA.
    let g = (k64 * (d64 - s64)).min(n * k64 * k64);
    let majors = n * (k64 * k64 - 1);
    (ha + g + majors).min(row_adds_without(k, d, s))
}

/// Combined LAR+GAR reduction rate for a row.
pub fn both_reduction_rate(k: usize, d: usize, s: usize) -> f64 {
    let without = row_adds_without(k, d, s) as f64;
    1.0 - row_adds_with_both(k, d, s) as f64 / without
}

/// A row of the paper's sweep tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Filter size `K`.
    pub k: usize,
    /// Step size `S`.
    pub s: usize,
    /// Input dimension `D` (0 for the per-output LAR tables).
    pub d: usize,
    /// Additions without reuse.
    pub without: u64,
    /// Additions with the studied reuse.
    pub with: u64,
    /// Reduction rate in percent.
    pub reduction_pct: f64,
}

impl SweepRow {
    fn new(k: usize, s: usize, d: usize, without: u64, with: u64) -> Self {
        SweepRow {
            k,
            s,
            d,
            without,
            with,
            reduction_pct: 100.0 * (1.0 - with as f64 / without as f64),
        }
    }
}

/// Table II: LAR vs filter size (unit stride), K ∈ {2,3,5,7,9,11}.
pub fn table2() -> Vec<SweepRow> {
    [11usize, 9, 7, 5, 3, 2]
        .iter()
        .map(|&k| {
            SweepRow::new(
                k,
                1,
                0,
                adds_per_output_without(k),
                adds_per_output_with_lar(k, 1),
            )
        })
        .collect()
}

/// Table III: LAR vs step size (K = 11), S ∈ 1..=11.
pub fn table3() -> Vec<SweepRow> {
    (1..=11)
        .map(|s| {
            SweepRow::new(
                11,
                s,
                0,
                adds_per_output_without(11),
                adds_per_output_with_lar(11, s),
            )
        })
        .collect()
}

/// Table IV: GAR vs filter size (28×28 input, unit stride).
pub fn table4() -> Vec<SweepRow> {
    [3usize, 5, 13, 15, 17]
        .iter()
        .map(|&k| {
            SweepRow::new(
                k,
                1,
                28,
                row_adds_without(k, 28, 1),
                row_adds_with_gar(k, 28, 1),
            )
        })
        .collect()
}

/// Table V: GAR vs step size (K = 13, 28×28 input), S ∈ {1,3,5}.
pub fn table5() -> Vec<SweepRow> {
    [1usize, 3, 5]
        .iter()
        .map(|&s| {
            SweepRow::new(
                13,
                s,
                28,
                row_adds_without(13, 28, s),
                row_adds_with_gar(13, 28, s),
            )
        })
        .collect()
}

/// Table VI: GAR vs input dimension (K = 13, unit stride).
pub fn table6() -> Vec<SweepRow> {
    [28usize, 32, 224]
        .iter()
        .map(|&d| {
            SweepRow::new(
                13,
                1,
                d,
                row_adds_without(13, d, 1),
                row_adds_with_gar(13, d, 1),
            )
        })
        .collect()
}

/// Equation (6): the GAR reduction rate limit as `D → ∞` for K = 13.
pub const GAR_LIMIT_K13: f64 = 214.5 / 337.5;

/// Equation (7): the LAR+GAR per-output limit as `K → ∞` (75%).
pub const BOTH_LIMIT: f64 = 0.75;

/// RME multiplication-elimination fraction for a `p × p` pooling window:
/// `1 − 1/p²` (75% at p = 2, ≈98% at p = 8 — the paper's GoogLeNet case).
pub fn rme_mult_reduction(pool_window: usize) -> f64 {
    let p2 = (pool_window * pool_window) as f64;
    1.0 - 1.0 / p2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_exactly() {
        // Paper Table II rows: (K, w/o, w/, rate%)
        let expect = [
            (11, 483, 373, 22.8),
            (9, 323, 251, 22.3),
            (7, 195, 153, 21.5),
            (5, 99, 79, 20.2),
            (3, 35, 29, 17.1),
            (2, 15, 13, 13.3),
        ];
        for (row, (k, wo, w, rate)) in table2().iter().zip(expect) {
            assert_eq!(row.k, k);
            assert_eq!(row.without, wo);
            assert_eq!(row.with, w);
            assert!((row.reduction_pct - rate).abs() < 0.1, "K={k}: {row:?}");
        }
    }

    #[test]
    fn table3_matches_paper_exactly() {
        let expect = [
            (1, 373),
            (2, 384),
            (3, 395),
            (4, 406),
            (5, 417),
            (6, 428),
            (7, 439),
            (8, 450),
            (9, 461),
            (10, 472),
            (11, 483),
        ];
        for (row, (s, w)) in table3().iter().zip(expect) {
            assert_eq!(row.s, s);
            assert_eq!(row.without, 483);
            assert_eq!(row.with, w, "S={s}");
        }
        // paper's quoted rates for the published subset
        assert!((table3()[0].reduction_pct - 22.8).abs() < 0.1);
        assert!((table3()[5].reduction_pct - 11.4).abs() < 0.1);
        assert!(table3()[10].reduction_pct.abs() < 1e-9);
    }

    #[test]
    fn table4_matches_paper_exactly() {
        let expect = [
            (3, 455, 347, 23.7),
            (5, 1188, 693, 41.7),
            (13, 5400, 2397, 55.6),
            (15, 6293, 2783, 55.8),
            (17, 6930, 3105, 55.2),
        ];
        for (row, (k, wo, w, rate)) in table4().iter().zip(expect) {
            assert_eq!(row.k, k);
            assert_eq!(row.without, wo, "K={k}");
            assert_eq!(row.with, w, "K={k}");
            assert!((row.reduction_pct - rate).abs() < 0.1, "K={k}");
        }
    }

    #[test]
    fn table5_matches_paper_exactly() {
        let expect = [
            (1, 5400, 2397, 55.6),
            (3, 2025, 1479, 27.0),
            (5, 1350, 1233, 8.7),
        ];
        for (row, (s, wo, w, rate)) in table5().iter().zip(expect) {
            assert_eq!(row.s, s);
            assert_eq!(row.without, wo, "S={s}");
            assert_eq!(row.with, w, "S={s}");
            assert!((row.reduction_pct - rate).abs() < 0.1, "S={s}");
        }
    }

    #[test]
    fn table6_matches_paper_exactly() {
        let expect = [
            (28, 5400, 2397, 55.6),
            (32, 6750, 2889, 57.2),
            (224, 71550, 26505, 63.0),
        ];
        for (row, (d, wo, w, rate)) in table6().iter().zip(expect) {
            assert_eq!(row.d, d);
            assert_eq!(row.without, wo, "D={d}");
            assert_eq!(row.with, w, "D={d}");
            assert!((row.reduction_pct - rate).abs() < 0.1, "D={d}");
        }
    }

    #[test]
    fn equation4_lar_limit_approaches_25_percent() {
        // P = K(K−1)/(4K²−1) → 1/4
        let near = lar_reduction_rate(10_000, 1);
        assert!((near - 0.25).abs() < 1e-3, "{near}");
        // and it increases monotonically in K
        let mut prev = 0.0;
        for k in 2..100 {
            let r = lar_reduction_rate(k, 1);
            assert!(r > prev, "K={k}");
            prev = r;
        }
    }

    #[test]
    fn equation5_6_gar_limit_for_k13() {
        // (214.5 D − 3003)/(337.5 D − 4050) → 0.636
        let near = gar_reduction_rate(13, 1_000_000, 1);
        assert!((near - GAR_LIMIT_K13).abs() < 1e-3, "{near}");
        assert!((GAR_LIMIT_K13 - 0.636).abs() < 1e-3);
        // equation 5's exact closed form at finite D
        for d in [28usize, 32, 224] {
            let expect = (214.5 * d as f64 - 3003.0) / (337.5 * d as f64 - 4050.0);
            let got = gar_reduction_rate(13, d, 1);
            assert!((got - expect).abs() < 2e-2, "D={d}: {got} vs {expect}");
        }
    }

    #[test]
    fn equation7_both_limit_is_75_percent() {
        // per-output amortized cost with both reuses tends to K²−1 of
        // 4K²−1: reduction → 3K²/(4K²−1) → 0.75 as K and D grow.
        let r = both_reduction_rate(301, 10_000, 1);
        assert!((r - BOTH_LIMIT).abs() < 0.02, "{r}");
    }

    #[test]
    fn rme_reduction_rates() {
        assert!((rme_mult_reduction(2) - 0.75).abs() < 1e-12);
        assert!((rme_mult_reduction(8) - 63.0 / 64.0).abs() < 1e-12);
        // paper: "up to 98%" for GoogLeNet's 8×8 pool
        assert!(rme_mult_reduction(8) > 0.98);
    }

    #[test]
    fn lar_saturates_beyond_filter_sized_steps() {
        assert_eq!(adds_per_output_with_lar(5, 5), adds_per_output_without(5));
        assert_eq!(adds_per_output_with_lar(5, 9), adds_per_output_without(5));
        assert!(adds_per_output_with_lar(5, 4) < adds_per_output_without(5));
    }

    #[test]
    fn both_never_exceeds_individual_reuses() {
        for k in [2usize, 3, 5, 7, 13] {
            for d in [16usize, 28, 32, 64] {
                for s in [1usize, 2, 3] {
                    if d <= k {
                        continue;
                    }
                    let both = row_adds_with_both(k, d, s);
                    let gar = row_adds_with_gar(k, d, s);
                    let without = row_adds_without(k, d, s);
                    assert!(both <= gar, "k={k} d={d} s={s}: both {both} > gar {gar}");
                    assert!(gar <= without, "k={k} d={d} s={s}");
                }
            }
        }
    }

    #[test]
    fn exact_gar_equals_published_form_on_the_paper_grid() {
        // every Table IV–VI geometry has an even conv-output width, where
        // the paper's 3K(D−S) term is exact.
        for (k, d, s) in [
            (3usize, 28usize, 1usize),
            (5, 28, 1),
            (13, 28, 1),
            (15, 28, 1),
            (17, 28, 1),
            (13, 28, 3),
            (13, 28, 5),
            (13, 32, 1),
            (13, 224, 1),
        ] {
            assert_eq!(
                row_adds_with_gar_exact(k, d, s),
                row_adds_with_gar(k, d, s),
                "k={k} d={d} s={s}"
            );
        }
    }

    #[test]
    fn pooled_row_width_examples() {
        assert_eq!(pooled_row_width(13, 28, 1), 8);
        assert_eq!(pooled_row_width(3, 28, 1), 13);
        assert_eq!(pooled_row_width(13, 28, 3), 3);
        assert_eq!(pooled_row_width(13, 28, 5), 2);
        assert_eq!(pooled_row_width(13, 224, 1), 106);
    }
}
