//! Quantized-MLCNN evaluation (paper Section VII-A, Fig. 12).
//!
//! The paper composes MLCNN with DoReFa-Net quantization at FP32, FP16
//! and INT8. This module evaluates a *trained* `mlcnn_nn::Network` at
//! each precision: weights are fake-quantized in place and activations
//! re-rounded between layers, which is what the reduced-precision
//! datapath produces.
//!
//! Precision semantics: FP16 rounds every value through binary16 (exactly
//! what the half-width buffers and MAC slices hold); INT8 uses symmetric
//! per-layer-scaled 8-bit post-training quantization — the faithful
//! stand-in for the paper's DoReFa training-time operators when the
//! network was trained at FP32 (see `quantize_network_weights` for the
//! full argument; the verbatim Eq. 8/9 operators live in
//! `mlcnn_quant::dorefa`).

use crate::plan::{EvalPlan, ExecutionPlan, PlanOptions, Workspace};
use mlcnn_data::Dataset;
use mlcnn_nn::train::{evaluate, EvalStats};
use mlcnn_nn::Network;
use mlcnn_quant::dorefa;
use mlcnn_quant::Precision;
use mlcnn_quant::F16;
use mlcnn_tensor::{Result, Tensor};

/// Round every element of a tensor through binary16.
pub fn round_tensor_f16(t: &Tensor<f32>) -> Tensor<f32> {
    let mut out = t.clone();
    round_f16_slice(out.as_mut_slice());
    out
}

/// In-place slice form of [`round_tensor_f16`] — the same per-element
/// transform, so the tensor wrapper and the execution plan's activation
/// rounding are bitwise identical.
pub fn round_f16_slice(xs: &mut [f32]) {
    for v in xs.iter_mut() {
        *v = F16::from_f32_rne(*v).to_f32_exact();
    }
}

/// Apply the precision's weight transform to an entire network in place.
///
/// * `Fp32` — identity.
/// * `Fp16` — round weights through binary16.
/// * `Int8` — symmetric 8-bit post-training quantization with per-layer
///   max scaling ([`dorefa::quantize_weights_ptq`]). The paper's Eq. 9
///   tanh transform is a quantization-aware *training* operator — it
///   rescales every layer's gain, which a network trained with it adapts
///   to (DoReFa trains through the STE). Our substitution trains at FP32,
///   so the faithful INT8 evaluation uses the PTQ operator at the same
///   8-bit grid resolution.
pub fn quantize_network_weights(net: &mut Network, precision: Precision) {
    match precision {
        Precision::Fp32 => {}
        Precision::Fp16 => net.transform_weights(&round_tensor_f16),
        Precision::Int8 => net.transform_weights(&|w| dorefa::quantize_weights_ptq(w, 8)),
    }
}

/// Run inference with activations re-rounded through the precision's grid
/// after every layer.
pub fn forward_quantized(
    net: &mut Network,
    input: &Tensor<f32>,
    precision: Precision,
) -> Result<Tensor<f32>> {
    let mut x = input.clone();
    for i in 0..net.len() {
        let layer = net.layer_mut(i).expect("index in range");
        x = layer.forward(&x, false)?;
        x = match precision {
            Precision::Fp32 => x,
            Precision::Fp16 => round_tensor_f16(&x),
            // dynamic-range symmetric PTQ between layers; the logits of
            // the final layer are left unquantized like DoReFa's last
            // layer.
            Precision::Int8 => {
                if i + 1 == net.len() {
                    x
                } else {
                    dorefa::quantize_activations_ptq(&x, 8)
                }
            }
        };
    }
    Ok(x)
}

/// Compile a *trained, unquantized* network into a layerwise execution
/// plan at `precision`: weights pre-quantized once at compile, activations
/// re-rounded between steps at run time. Bitwise identical to running
/// [`quantize_network_weights`] followed by [`forward_quantized`] — the
/// same quantizers applied in the same order, through the shared slice
/// kernels — but compiled once and allocation-free per call.
///
/// Fails when the network carries no [`mlcnn_nn::LayerSpec`] blueprint or
/// the blueprint is not plan-compilable (composites, batch norm).
pub fn quantized_plan(net: &mut Network, precision: Precision) -> Result<ExecutionPlan> {
    net.eval_plan(PlanOptions::layerwise().with_precision(precision))
}

/// Evaluate a trained network at a given precision (weights quantized,
/// activations re-rounded). The network is modified in place; pass a
/// clone-by-rebuild if the original must stay FP32.
///
/// When the network carries its spec blueprint, evaluation runs through a
/// compiled [`ExecutionPlan`] (one workspace reused across batches);
/// spec-less networks fall back to the layerwise quantized loop.
pub fn evaluate_quantized(
    net: &mut Network,
    data: &Dataset,
    precision: Precision,
    ks: &[usize],
    batch_size: usize,
) -> Result<EvalStats> {
    if precision == Precision::Fp32 {
        return evaluate(net, data, ks, batch_size);
    }
    // compile from the original weights *before* the in-place quantization
    // below, so the plan applies the weight transform exactly once
    let plan = quantized_plan(net, precision).ok();
    quantize_network_weights(net, precision);
    let mut ws = plan
        .as_ref()
        .map(|p| Workspace::for_plan(p, batch_size.max(1)));
    let mut hits = vec![0.0f32; ks.len()];
    let mut total = 0usize;
    for batch in data.batches(batch_size) {
        let logits = match (&plan, &mut ws) {
            (Some(p), Some(ws)) => p.forward(&batch.images, ws)?,
            _ => forward_quantized(net, &batch.images, precision)?,
        };
        for (i, &k) in ks.iter().enumerate() {
            let k = k.min(data.num_classes());
            hits[i] +=
                mlcnn_nn::loss::top_k_accuracy(&logits, &batch.labels, k) * batch.len() as f32;
        }
        total += batch.len();
    }
    Ok(EvalStats {
        top_k: ks
            .iter()
            .zip(hits)
            .map(|(&k, h)| (k, h / total.max(1) as f32))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_data::blobs::{generate, BlobsConfig};
    use mlcnn_nn::spec::{build_network, LayerSpec};
    use mlcnn_nn::train::{fit, TrainConfig};
    use mlcnn_tensor::Shape4;

    fn trained_net_and_data() -> (Network, Dataset) {
        let data = generate(BlobsConfig {
            classes: 4,
            per_class: 20,
            noise: 0.15,
            ..Default::default()
        });
        let mut net = build_network(
            &[
                LayerSpec::Conv {
                    out_ch: 4,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::ReLU,
                LayerSpec::AvgPool {
                    window: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear { out: 4 },
            ],
            Shape4::new(1, 1, 8, 8),
            3,
        )
        .unwrap();
        fit(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 6,
                batch_size: 8,
                ..Default::default()
            },
        )
        .unwrap();
        (net, data)
    }

    #[test]
    fn fp16_rounding_changes_little() {
        let (mut net, data) = trained_net_and_data();
        let fp32 = evaluate_quantized(&mut net, &data, Precision::Fp32, &[1], 8).unwrap();
        let fp16 = evaluate_quantized(&mut net, &data, Precision::Fp16, &[1], 8).unwrap();
        let a32 = fp32.at(1).unwrap();
        let a16 = fp16.at(1).unwrap();
        assert!(a32 > 0.6, "fp32 accuracy too low: {a32}");
        assert!(
            (a32 - a16).abs() < 0.1,
            "fp16 deviates too much: {a32} vs {a16}"
        );
    }

    #[test]
    fn int8_dorefa_stays_close() {
        let (mut net, data) = trained_net_and_data();
        let fp32 = evaluate_quantized(&mut net, &data, Precision::Fp32, &[1], 8)
            .unwrap()
            .at(1)
            .unwrap();
        // rebuild: weights were untouched by Fp32 path
        let int8 = evaluate_quantized(&mut net, &data, Precision::Int8, &[1], 8)
            .unwrap()
            .at(1)
            .unwrap();
        assert!(
            int8 > fp32 - 0.1,
            "int8 collapsed: fp32 {fp32} vs int8 {int8}"
        );
    }

    #[test]
    fn f16_rounding_is_idempotent_on_tensors() {
        let t = Tensor::plane(1, 4, vec![0.1, -2.7, 3.33125, 1e-5]).unwrap();
        let once = round_tensor_f16(&t);
        let twice = round_tensor_f16(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn forward_quantized_fp32_matches_plain_forward() {
        let (mut net, data) = trained_net_and_data();
        let batch = data.batches(4).next().unwrap();
        let a = net.forward(&batch.images).unwrap();
        let b = forward_quantized(&mut net, &batch.images, Precision::Fp32).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_plan_matches_layerwise_loop_bitwise() {
        let (mut net, data) = trained_net_and_data();
        let batch = data.batches(8).next().unwrap();
        let specs = net.specs().unwrap().to_vec();
        let params = net.export_params();
        for precision in [Precision::Fp16, Precision::Int8] {
            let plan = quantized_plan(&mut net, precision).unwrap();
            let mut ws = Workspace::for_plan(&plan, 8);
            let a = plan.forward(&batch.images, &mut ws).unwrap();
            // legacy path: quantize a rebuilt twin in place, layerwise loop
            let mut legacy = build_network(&specs, Shape4::new(1, 1, 8, 8), 3).unwrap();
            legacy.import_params(&params);
            quantize_network_weights(&mut legacy, precision);
            let b = forward_quantized(&mut legacy, &batch.images, precision).unwrap();
            assert_eq!(a, b, "{precision:?} plan diverges from layerwise loop");
        }
    }

    #[test]
    fn evaluate_quantized_plan_path_matches_layerwise_loop() {
        let (mut net, data) = trained_net_and_data();
        let specs = net.specs().unwrap().to_vec();
        let params = net.export_params();
        for precision in [Precision::Fp16, Precision::Int8] {
            net.import_params(&params);
            let with_plan = evaluate_quantized(&mut net, &data, precision, &[1], 8)
                .unwrap()
                .at(1)
                .unwrap();
            // the pre-plan evaluation: quantize a rebuilt twin in place and
            // run the layerwise quantized loop over the same batches
            let mut twin = build_network(&specs, Shape4::new(1, 1, 8, 8), 3).unwrap();
            twin.import_params(&params);
            quantize_network_weights(&mut twin, precision);
            let mut hits = 0.0f32;
            let mut total = 0usize;
            for batch in data.batches(8) {
                let logits = forward_quantized(&mut twin, &batch.images, precision).unwrap();
                hits +=
                    mlcnn_nn::loss::top_k_accuracy(&logits, &batch.labels, 1) * batch.len() as f32;
                total += batch.len();
            }
            let layerwise = hits / total.max(1) as f32;
            assert_eq!(with_plan, layerwise, "{precision:?}");
        }
    }

    #[test]
    fn weight_quantization_actually_changes_weights() {
        let (mut net, _) = trained_net_and_data();
        let before: f32 = net.params().iter().map(|p| p.value.sum()).sum();
        quantize_network_weights(&mut net, Precision::Int8);
        let after: f32 = net.params().iter().map(|p| p.value.sum()).sum();
        assert_ne!(before, after);
    }
}
