//! The compiled execution plan: one inference engine behind every
//! forward path.
//!
//! [`ExecutionPlan::compile`] turns a *sequential* [`LayerSpec`] pipeline
//! plus its trained parameters into a flat list of ops with all geometry
//! resolved, Linear weights pre-transposed, and (for reduced precisions)
//! weights pre-quantized — work the legacy paths redid on every call. The
//! plan executes out of a [`Workspace`] arena of ping-pong buffers sized at
//! compile time, so steady-state [`ExecutionPlan::forward`] performs **zero
//! heap allocation** beyond the returned tensor (none at all via
//! [`ExecutionPlan::forward_into`]).
//!
//! `forward` takes `&self` and the plan is `Send + Sync`: one compiled plan
//! can serve many threads, each holding its own workspace — the
//! multi-mode-engine shape argued for by the cross-layer-reuse literature,
//! and the substrate the serving/batching roadmap items build on.
//!
//! Mode selection mirrors [`FusedNetwork`](crate::FusedNetwork) (which is
//! now a thin adapter over this module): with [`PlanOptions::fuse`] on,
//! `Conv, AvgPool{w==s}[, ReLU]` and `Conv, GlobalAvgPool[, ReLU]` groups
//! run through the MLCNN fused operator (Algorithm 1); everything else runs
//! the reference kernels. All kernels are the shared `_into` slice variants
//! from `mlcnn-tensor`, so the plan is bitwise identical to the legacy
//! `Network` / `FusedNetwork` / `forward_quantized` paths it replaces.

mod exec;
mod segments;
mod view;
mod workspace;

pub use segments::{ParamHandle, SegmentKey, SegmentStats, SegmentStore};
pub use workspace::{PooledWorkspace, Workspace, WorkspacePool};

use crate::content::Sha256;
use crate::fused::FusedConvPool;
use crate::quantized::round_tensor_f16;
use mlcnn_nn::{LayerSpec, Network};
use mlcnn_quant::{dorefa, Precision};
use mlcnn_tensor::linalg::transpose;
use mlcnn_tensor::parallel::par_map_batch;
use mlcnn_tensor::{ConvGeometry, PoolGeometry, Result, Shape2, Shape4, Tensor, TensorError};
use segments::{Fingerprint, Segment};
use std::sync::Arc;

use crate::fused::FusedGeometry;

/// Compilation knobs for [`ExecutionPlan::compile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Numeric precision: weights are pre-quantized at compile, activations
    /// re-rounded through the precision's grid after each op at run time
    /// (the reduced-precision datapath semantics of `forward_quantized`).
    pub precision: Precision,
    /// Fuse `Conv, AvgPool[, ReLU]` groups into the MLCNN fused operator.
    /// Disable to reproduce the layerwise paths exactly (required for
    /// bit-identity with `Network::forward` / `forward_quantized`, which
    /// round between conv and pool).
    pub fuse: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            precision: Precision::Fp32,
            fuse: true,
        }
    }
}

impl PlanOptions {
    /// Layerwise (unfused) plan at FP32 — the `Network::forward` twin.
    pub fn layerwise() -> Self {
        Self {
            precision: Precision::Fp32,
            fuse: false,
        }
    }

    /// Select a precision, keeping the other options.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Toggle fusion, keeping the other options.
    pub fn with_fusion(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }
}

/// One executable op with fully resolved geometry and baked weights.
///
/// Parameter blocks are held behind `Arc`s: a plan compiled through a
/// [`SegmentStore`] ([`ExecutionPlan::compile_shared`]) shares them with
/// every other plan whose source layer has the same content hash, so a
/// revision that changes one layer keeps a single resident copy of all the
/// others. Plans compiled without a store get private (but still `Arc`'d)
/// segments — execution is identical either way.
pub(crate) enum Op {
    /// MLCNN fused conv + avg-pool (+ ReLU) group.
    Fused {
        kernel: Arc<FusedConvPool<f32>>,
        geom: FusedGeometry,
    },
    /// Plain convolution (regular mode), executed im2col + GEMM.
    Conv {
        weight: Arc<Tensor<f32>>,
        bias: Arc<Vec<f32>>,
        geom: ConvGeometry,
    },
    /// ReLU, in place.
    ReLU,
    /// Sigmoid, in place.
    Sigmoid,
    /// Average pooling.
    AvgPool(PoolGeometry),
    /// Max pooling (values only; inference needs no argmax).
    MaxPool(PoolGeometry),
    /// Flatten: pure shape bookkeeping, no data movement.
    Flatten,
    /// Fully connected layer with the weight pre-transposed to
    /// `in × out` so the forward GEMM needs no per-call transpose.
    Linear {
        weight_t: Arc<Vec<f32>>,
        bias: Arc<Vec<f32>>,
        in_features: usize,
        out_features: usize,
    },
}

/// A baked bias or pre-transposed weight vector, shareable across plans.
type SharedVec = Arc<Vec<f32>>;

/// Quantize a source FP32 weight into its baked form for `precision` —
/// the single definition both the private and the shared compile paths
/// bake through, so a segment-store hit is bitwise identical to a private
/// bake by construction.
fn bake_weight(precision: Precision, w: Tensor<f32>) -> Tensor<f32> {
    match precision {
        Precision::Fp32 => w,
        Precision::Fp16 => round_tensor_f16(&w),
        Precision::Int8 => dorefa::quantize_weights_ptq(&w, 8),
    }
}

fn precision_tag(p: Precision) -> u8 {
    match p {
        Precision::Fp32 => 0,
        Precision::Fp16 => 1,
        Precision::Int8 => 2,
    }
}

/// Common prefix of every segment content hash: domain tag, segment form,
/// precision, and the source weight's shape. Callers append form-specific
/// geometry and then the FP32 parameter bytes.
fn segment_hasher(form: u8, precision: Precision, w: &Tensor<f32>) -> Sha256 {
    let mut h = Sha256::new();
    h.update(b"mlcnn-seg-v1");
    h.update(&[form, precision_tag(precision)]);
    let s = w.shape();
    h.update_usize(s.n);
    h.update_usize(s.c);
    h.update_usize(s.h);
    h.update_usize(s.w);
    h
}

/// Bake (or share) a plain conv segment: quantized weight + bias.
fn shared_conv(
    store: Option<&SegmentStore>,
    precision: Precision,
    w: Tensor<f32>,
    b: Tensor<f32>,
) -> Result<(Arc<Tensor<f32>>, SharedVec)> {
    let expect = Fingerprint {
        form: 0,
        weight_len: w.len(),
        bias_len: b.len(),
    };
    let key = store.map(|_| {
        let mut h = segment_hasher(0, precision, &w);
        h.update_f32(w.as_slice());
        h.update_f32(b.as_slice());
        h.finish()
    });
    let bake = move || -> Result<Segment> {
        Ok(Segment::Conv {
            weight: Arc::new(bake_weight(precision, w)),
            bias: Arc::new(b.into_vec()),
        })
    };
    let seg = match (store, key) {
        (Some(s), Some(key)) => s.get_or_bake(key, expect, bake)?,
        _ => bake()?,
    };
    match seg {
        Segment::Conv { weight, bias } => Ok((weight, bias)),
        _ => unreachable!("conv content key always bakes a conv segment"),
    }
}

/// Bake (or share) a fused conv-pool kernel. The kernel embeds its conv
/// stride/pad, pool window and ReLU flag but *not* the input geometry, so
/// one shared kernel serves plans over any input size.
#[allow(clippy::too_many_arguments)]
fn shared_fused(
    store: Option<&SegmentStore>,
    precision: Precision,
    w: Tensor<f32>,
    b: Tensor<f32>,
    stride: usize,
    pad: usize,
    window: usize,
    with_relu: bool,
) -> Result<Arc<FusedConvPool<f32>>> {
    let expect = Fingerprint {
        form: 2,
        weight_len: w.len(),
        bias_len: b.len(),
    };
    let key = store.map(|_| {
        let mut h = segment_hasher(2, precision, &w);
        h.update_usize(stride);
        h.update_usize(pad);
        h.update_usize(window);
        h.update(&[u8::from(with_relu)]);
        h.update_f32(w.as_slice());
        h.update_f32(b.as_slice());
        h.finish()
    });
    let bake = move || -> Result<Segment> {
        let kernel =
            FusedConvPool::new(bake_weight(precision, w), b.into_vec(), stride, pad, window)?
                .with_relu(with_relu);
        Ok(Segment::Fused {
            kernel: Arc::new(kernel),
        })
    };
    let seg = match (store, key) {
        (Some(s), Some(key)) => s.get_or_bake(key, expect, bake)?,
        _ => bake()?,
    };
    match seg {
        Segment::Fused { kernel } => Ok(kernel),
        _ => unreachable!("fused content key always bakes a fused segment"),
    }
}

/// Bake (or share) a linear segment: pre-transposed quantized weight + bias.
fn shared_linear(
    store: Option<&SegmentStore>,
    precision: Precision,
    w: Tensor<f32>,
    b: Tensor<f32>,
    in_features: usize,
    out_features: usize,
) -> Result<(SharedVec, SharedVec)> {
    let expect = Fingerprint {
        form: 1,
        weight_len: w.len(),
        bias_len: b.len(),
    };
    let key = store.map(|_| {
        let mut h = segment_hasher(1, precision, &w);
        h.update_usize(in_features);
        h.update_usize(out_features);
        h.update_f32(w.as_slice());
        h.update_f32(b.as_slice());
        h.finish()
    });
    let bake = move || -> Result<Segment> {
        let wq = bake_weight(precision, w);
        let weight_t = transpose(wq.as_slice(), Shape2::new(out_features, in_features));
        Ok(Segment::Linear {
            weight_t: Arc::new(weight_t),
            bias: Arc::new(b.into_vec()),
        })
    };
    let seg = match (store, key) {
        (Some(s), Some(key)) => s.get_or_bake(key, expect, bake)?,
        _ => bake()?,
    };
    match seg {
        Segment::Linear { weight_t, bias } => Ok((weight_t, bias)),
        _ => unreachable!("linear content key always bakes a linear segment"),
    }
}

/// An op plus its per-item input/output shapes (batch dim fixed at 1) and
/// whether the precision's activation rounding applies after it.
pub(crate) struct Step {
    pub(crate) op: Op,
    pub(crate) in_shape: Shape4,
    pub(crate) out_shape: Shape4,
    pub(crate) round_after: bool,
}

/// A compiled, shareable (`Send + Sync`) inference pipeline. See the
/// [module docs](self).
pub struct ExecutionPlan {
    pub(crate) steps: Vec<Step>,
    pub(crate) input_shape: Shape4,
    pub(crate) output_shape: Shape4,
    pub(crate) precision: Precision,
    /// Largest per-item activation buffer any step needs (elements).
    pub(crate) buf_item_len: usize,
    /// Largest per-item im2col scratch any conv step needs (elements).
    pub(crate) cols_item_len: usize,
}

impl ExecutionPlan {
    /// Compile a sequential spec list plus its trained parameters (in
    /// `Network::export_params` order: conv/linear layers contribute
    /// `[weight, bias]` pairs in execution order). The same static gate as
    /// `FusedNetwork::compile` applies (`mlcnn_check::check_compile`):
    /// composites and batch norm are rejected with their diagnostic codes;
    /// dropout is identity at inference and compiles to nothing.
    pub fn compile(
        specs: &[LayerSpec],
        params: &[Tensor<f32>],
        input: Shape4,
        opts: PlanOptions,
    ) -> Result<ExecutionPlan> {
        Self::compile_with(specs, params, input, opts, None)
    }

    /// [`Self::compile`] deduplicating baked parameter segments through a
    /// content-addressed [`SegmentStore`]: every conv / fused / linear
    /// segment is keyed by a SHA-256 over its source form (geometry,
    /// precision, FP32 parameters) and shared with any other plan compiled
    /// through the same store whose layer hashes identically — other
    /// revisions of the same model, or structurally identical layers of
    /// different models. The compiled plan is bitwise identical to
    /// [`Self::compile`]'s output; only the ownership of the baked bytes
    /// changes.
    pub fn compile_shared(
        specs: &[LayerSpec],
        params: &[Tensor<f32>],
        input: Shape4,
        opts: PlanOptions,
        store: &SegmentStore,
    ) -> Result<ExecutionPlan> {
        Self::compile_with(specs, params, input, opts, Some(store))
    }

    fn compile_with(
        specs: &[LayerSpec],
        params: &[Tensor<f32>],
        input: Shape4,
        opts: PlanOptions,
        store: Option<&SegmentStore>,
    ) -> Result<ExecutionPlan> {
        mlcnn_check::check_compile_summary(specs, input)
            .map_err(|reason| TensorError::BadGeometry { reason })?;
        let precision = opts.precision;
        let mut steps: Vec<(Step, usize)> = Vec::new(); // step + source spec index
        let mut shape = Shape4::new(1, input.c, input.h, input.w);
        let mut p = 0usize; // parameter cursor
        let mut i = 0usize;

        let take_pair = |p: &mut usize| -> Result<(Tensor<f32>, Tensor<f32>)> {
            if *p + 2 > params.len() {
                return Err(TensorError::BadGeometry {
                    reason: "parameter list exhausted during compile".into(),
                });
            }
            let w = params[*p].clone();
            let b = params[*p + 1].clone();
            *p += 2;
            Ok((w, b))
        };
        let push = |steps: &mut Vec<(Step, usize)>,
                    shape: &mut Shape4,
                    op: Op,
                    out: Shape4,
                    spec_idx: usize| {
            steps.push((
                Step {
                    op,
                    in_shape: *shape,
                    out_shape: out,
                    round_after: false, // filled in below, once
                },
                spec_idx,
            ));
            *shape = out;
        };

        while i < specs.len() {
            match &specs[i] {
                LayerSpec::Conv {
                    out_ch,
                    k,
                    stride,
                    pad,
                } => {
                    let (w, b) = take_pair(&mut p)?;
                    if w.shape() != Shape4::new(*out_ch, shape.c, *k, *k) {
                        return Err(TensorError::ShapeMismatch {
                            left: w.shape(),
                            right: Shape4::new(*out_ch, shape.c, *k, *k),
                            op: "compile conv weights",
                        });
                    }
                    let geom = ConvGeometry::new(shape.h, shape.w, *k, *k, *stride, *pad)?;
                    // look ahead for a fusable pool
                    let pool = if opts.fuse {
                        match specs.get(i + 1) {
                            Some(LayerSpec::AvgPool { window, stride: ps }) if window == ps => {
                                Some(*window)
                            }
                            Some(LayerSpec::GlobalAvgPool) if geom.out_h == geom.out_w => {
                                Some(geom.out_h)
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    match pool {
                        Some(window) if window <= geom.out_h && window <= geom.out_w => {
                            let with_relu = matches!(specs.get(i + 2), Some(LayerSpec::ReLU));
                            let kernel = shared_fused(
                                store, precision, w, b, *stride, *pad, window, with_relu,
                            )?;
                            let fgeom = kernel.geometry(shape)?;
                            let out = kernel.out_shape(shape)?;
                            let group_end = i + if with_relu { 2 } else { 1 };
                            push(
                                &mut steps,
                                &mut shape,
                                Op::Fused {
                                    kernel,
                                    geom: fgeom,
                                },
                                out,
                                group_end,
                            );
                            i = group_end + 1;
                            continue;
                        }
                        _ => {
                            let (weight, bias) = shared_conv(store, precision, w, b)?;
                            let out = Shape4::new(1, *out_ch, geom.out_h, geom.out_w);
                            push(
                                &mut steps,
                                &mut shape,
                                Op::Conv { weight, bias, geom },
                                out,
                                i,
                            );
                        }
                    }
                }
                LayerSpec::ReLU => {
                    let out = shape;
                    push(&mut steps, &mut shape, Op::ReLU, out, i);
                }
                LayerSpec::Sigmoid => {
                    let out = shape;
                    push(&mut steps, &mut shape, Op::Sigmoid, out, i);
                }
                LayerSpec::AvgPool { window, stride } => {
                    let g = PoolGeometry::new(shape.h, shape.w, *window, *stride)?;
                    let out = Shape4::new(1, shape.c, g.out_h, g.out_w);
                    push(&mut steps, &mut shape, Op::AvgPool(g), out, i);
                }
                LayerSpec::GlobalAvgPool => {
                    let g = PoolGeometry::new(shape.h, shape.w, shape.h, shape.h)?;
                    let out = Shape4::new(1, shape.c, g.out_h, g.out_w);
                    push(&mut steps, &mut shape, Op::AvgPool(g), out, i);
                }
                LayerSpec::MaxPool { window, stride } => {
                    let g = PoolGeometry::new(shape.h, shape.w, *window, *stride)?;
                    let out = Shape4::new(1, shape.c, g.out_h, g.out_w);
                    push(&mut steps, &mut shape, Op::MaxPool(g), out, i);
                }
                LayerSpec::Flatten => {
                    let out = Shape4::new(1, 1, 1, shape.c * shape.h * shape.w);
                    push(&mut steps, &mut shape, Op::Flatten, out, i);
                }
                LayerSpec::Linear { out } => {
                    let (w, b) = take_pair(&mut p)?;
                    let in_features = shape.c * shape.h * shape.w;
                    if w.len() != out * in_features {
                        return Err(TensorError::BadGeometry {
                            reason: format!(
                                "linear weight length {} != {out}x{in_features}",
                                w.len()
                            ),
                        });
                    }
                    let (weight_t, bias) =
                        shared_linear(store, precision, w, b, in_features, *out)?;
                    let out_shape = Shape4::new(1, 1, 1, *out);
                    push(
                        &mut steps,
                        &mut shape,
                        Op::Linear {
                            weight_t,
                            bias,
                            in_features,
                            out_features: *out,
                        },
                        out_shape,
                        i,
                    );
                }
                LayerSpec::Dropout { .. } => {
                    // dropout is identity at inference; compiles to nothing
                }
                LayerSpec::Inception { .. }
                | LayerSpec::DenseBlock { .. }
                | LayerSpec::Residual { .. }
                | LayerSpec::BatchNorm => {
                    unreachable!("rejected by check_compile above");
                }
            }
            i += 1;
        }
        if p != params.len() {
            return Err(TensorError::BadGeometry {
                reason: format!(
                    "{} unused parameter tensors after compile",
                    params.len() - p
                ),
            });
        }

        // Activation rounding placement, mirroring `forward_quantized`:
        // FP16 rounds after every layer; INT8 after every layer except the
        // last (DoReFa leaves the logits unquantized). Flatten moves no
        // data and rounding is idempotent, so it never rounds.
        let last_spec = specs.len().saturating_sub(1);
        let mut steps: Vec<Step> = steps
            .into_iter()
            .map(|(mut s, spec_idx)| {
                s.round_after = match precision {
                    Precision::Fp32 => false,
                    Precision::Fp16 => !matches!(s.op, Op::Flatten),
                    Precision::Int8 => !matches!(s.op, Op::Flatten) && spec_idx != last_spec,
                };
                s
            })
            .collect();
        steps.shrink_to_fit();

        // Arena sizing: the ping-pong buffers must hold the largest
        // per-item activation, the cols scratch the largest im2col matrix.
        // All products go through checked arithmetic — a hostile artifact
        // must surface as a P008 compile error, never a debug-build panic
        // or a release-build wraparound that undersizes the arena.
        let overflow = || TensorError::BadGeometry {
            reason: "error[P008]: plan size arithmetic overflows usize; \
                     the workspace arena cannot be sized"
                .into(),
        };
        let checked_len = |s: Shape4| -> Result<usize> { s.checked_len().ok_or_else(overflow) };
        let mut buf_item_len = checked_len(Shape4::new(1, input.c, input.h, input.w))?;
        let mut cols_item_len = 0usize;
        for s in &steps {
            buf_item_len = buf_item_len.max(checked_len(s.out_shape)?);
            if let Op::Conv { geom, .. } = &s.op {
                let need = s
                    .in_shape
                    .c
                    .checked_mul(geom.taps())
                    .and_then(|x| x.checked_mul(geom.out_len()))
                    .ok_or_else(overflow)?;
                cols_item_len = cols_item_len.max(need);
            }
        }

        let plan = ExecutionPlan {
            steps,
            input_shape: Shape4::new(1, input.c, input.h, input.w),
            output_shape: shape,
            precision,
            buf_item_len,
            cols_item_len,
        };
        // The compiler checking its own output: every debug build re-runs
        // the P0xx dataflow verifier over the freshly lowered plan, so a
        // lowering bug that breaks a plan invariant fails here instead of
        // corrupting an inference. Release builds skip the pass; the
        // deny-mode gates (registry trial-compile, router publish) still
        // run it where untrusted plans enter.
        #[cfg(debug_assertions)]
        if let Err(e) = plan.verify() {
            panic!("ExecutionPlan::compile produced a plan its own verifier rejects: {e}");
        }
        Ok(plan)
    }

    /// Expected single-item input shape (batch dim fixed at 1).
    pub fn input_shape(&self) -> Shape4 {
        self.input_shape
    }

    /// Single-item output shape (batch dim fixed at 1).
    pub fn output_shape(&self) -> Shape4 {
        self.output_shape
    }

    /// The precision the plan was compiled at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of executable ops.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the plan has no ops (identity pipeline).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of MLCNN fused conv-pool groups selected at compile.
    pub fn fused_op_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.op, Op::Fused { .. }))
            .count()
    }

    /// Workspace arena footprint in bytes for a forward at `batch` items:
    /// the two ping-pong activation buffers scale with the batch, the
    /// im2col scratch does not. Used by the serving-config lints to sanity
    /// check `workers × max_batch` memory before spawning anything.
    pub fn arena_bytes(&self, batch: usize) -> usize {
        let elems = 2usize
            .saturating_mul(self.buf_item_len)
            .saturating_mul(batch.max(1))
            .saturating_add(self.cols_item_len);
        elems.saturating_mul(std::mem::size_of::<f32>())
    }

    /// Estimated parameter bytes this plan keeps resident: every baked
    /// weight and bias across its steps, counting shared segments at full
    /// size. Together with [`Self::arena_bytes`] this is the byte estimate
    /// the registry's `PlanCache` evicts by; for the *deduplicated*
    /// footprint across many plans, intersect [`Self::param_handles`] by
    /// address instead.
    pub fn resident_param_bytes(&self) -> usize {
        let f32s = std::mem::size_of::<f32>();
        self.steps
            .iter()
            .map(|s| match &s.op {
                Op::Fused { kernel, .. } => {
                    (kernel.weight().len() + kernel.bias().len()).saturating_mul(f32s)
                }
                Op::Conv { weight, bias, .. } => (weight.len() + bias.len()).saturating_mul(f32s),
                Op::Linear { weight_t, bias, .. } => {
                    (weight_t.len() + bias.len()).saturating_mul(f32s)
                }
                _ => 0,
            })
            .fold(0usize, usize::saturating_add)
    }

    /// Type-erased handles on the plan's parameter segments, in step
    /// order. Two plans compiled through one [`SegmentStore`] return
    /// handles with equal [`ParamHandle::addr`] wherever they share a
    /// segment — dedup accounting keys resident bytes by address, and
    /// drain tests downgrade a handle to observe exactly when the last
    /// owner lets the bytes go.
    pub fn param_handles(&self) -> Vec<ParamHandle> {
        let f32s = std::mem::size_of::<f32>();
        let mut out = Vec::new();
        for s in &self.steps {
            match &s.op {
                Op::Fused { kernel, .. } => {
                    let bytes = (kernel.weight().len() + kernel.bias().len()) * f32s;
                    out.push(ParamHandle::new(kernel.clone(), bytes));
                }
                Op::Conv { weight, bias, .. } => {
                    out.push(ParamHandle::new(weight.clone(), weight.len() * f32s));
                    out.push(ParamHandle::new(bias.clone(), bias.len() * f32s));
                }
                Op::Linear { weight_t, bias, .. } => {
                    out.push(ParamHandle::new(weight_t.clone(), weight_t.len() * f32s));
                    out.push(ParamHandle::new(bias.clone(), bias.len() * f32s));
                }
                _ => {}
            }
        }
        out
    }

    /// Output shape for a batched input shape.
    pub fn batched_output_shape(&self, batch: usize) -> Shape4 {
        Shape4::new(
            batch,
            self.output_shape.c,
            self.output_shape.h,
            self.output_shape.w,
        )
    }

    fn check_input(&self, input: &Tensor<f32>) -> Result<()> {
        let s = input.shape();
        let e = self.input_shape;
        if (s.c, s.h, s.w) != (e.c, e.h, e.w) {
            return Err(TensorError::ShapeMismatch {
                left: s,
                right: e,
                op: "execution plan input",
            });
        }
        Ok(())
    }

    /// Run inference. `&self` — the plan is immutable and shareable; all
    /// mutable state lives in the caller's [`Workspace`]. Steady-state the
    /// only allocation is the returned tensor; use
    /// [`Self::forward_into`] to eliminate that too.
    pub fn forward(&self, input: &Tensor<f32>, ws: &mut Workspace) -> Result<Tensor<f32>> {
        self.check_input(input)?;
        let batch = input.shape().n;
        let out_shape = self.batched_output_shape(batch);
        let mut out = vec![0.0_f32; out_shape.len()];
        exec::run(self, input, ws, &mut out)?;
        Tensor::from_vec(out_shape, out)
    }

    /// Allocation-free forward: write into a caller-owned output tensor,
    /// which must already have [`Self::batched_output_shape`] for the
    /// input's batch size.
    pub fn forward_into(
        &self,
        input: &Tensor<f32>,
        ws: &mut Workspace,
        out: &mut Tensor<f32>,
    ) -> Result<()> {
        self.check_input(input)?;
        let expect = self.batched_output_shape(input.shape().n);
        if out.shape() != expect {
            return Err(TensorError::ShapeMismatch {
                left: out.shape(),
                right: expect,
                op: "execution plan output",
            });
        }
        exec::run(self, input, ws, out.as_mut_slice())
    }

    /// Batch-parallel forward: items fan out across threads via
    /// `par_map_batch`, each worker with its own workspace.
    ///
    /// FP32/FP16 are bitwise identical to [`Self::forward`] (rounding is
    /// per-element). INT8's activation scale is the *batch-global* max, so
    /// per-item execution would change results — the plan falls back to the
    /// sequential full-batch path to preserve semantics.
    pub fn forward_batch(&self, input: &Tensor<f32>) -> Result<Tensor<f32>> {
        self.forward_batch_with(input, &WorkspacePool::new())
    }

    /// [`Self::forward_batch`] drawing workspaces from a caller-owned
    /// [`WorkspacePool`] instead of allocating fresh arenas per item: the
    /// pool is `Sync`, leasing never blocks, and every rayon worker (or
    /// serving thread) gets its own warm workspace — many threads can batch
    /// through one shared plan + pool concurrently without contending on a
    /// single `Workspace`.
    pub fn forward_batch_with(
        &self,
        input: &Tensor<f32>,
        pool: &WorkspacePool,
    ) -> Result<Tensor<f32>> {
        self.check_input(input)?;
        if self.precision == Precision::Int8 || input.shape().n <= 1 {
            let mut ws = pool.lease();
            return self.forward(input, &mut ws);
        }
        par_map_batch(input, |item| {
            let mut ws = pool.lease();
            self.forward(&item, &mut ws)
        })
    }

    /// Per-item batch execution: every batch item runs as its own
    /// batch-of-1 forward, so item `i` of the output is **bitwise
    /// identical to [`Self::forward`] on item `i` alone — at every
    /// precision**. This is the request-level semantics a serving batcher
    /// needs: coalescing requests into one call must not change any
    /// individual response.
    ///
    /// For FP32/FP16 this coincides with [`Self::forward_batch`] (rounding
    /// is per-element). For INT8 it differs: `forward`/`forward_batch`
    /// quantize activations with a *batch-global* scale, while here each
    /// item keeps the scale it would have had on its own.
    pub fn forward_each(&self, input: &Tensor<f32>, pool: &WorkspacePool) -> Result<Tensor<f32>> {
        self.check_input(input)?;
        if input.shape().n <= 1 {
            let mut ws = pool.lease();
            return self.forward(input, &mut ws);
        }
        par_map_batch(input, |item| {
            let mut ws = pool.lease();
            self.forward(&item, &mut ws)
        })
    }
}

/// Compile an [`ExecutionPlan`] straight from a built network: the
/// inference export for `mlcnn_nn::Network`.
pub trait EvalPlan {
    /// Compile this network's recorded blueprint into an execution plan.
    /// Fails if the network was assembled without specs (see
    /// [`Network::with_specs`]) or the blueprint is not plan-compilable.
    fn eval_plan(&mut self, opts: PlanOptions) -> Result<ExecutionPlan>;
}

impl EvalPlan for Network {
    fn eval_plan(&mut self, opts: PlanOptions) -> Result<ExecutionPlan> {
        let specs = self
            .specs()
            .ok_or_else(|| TensorError::BadGeometry {
                reason: "network has no recorded LayerSpec blueprint; \
                         build it with build_network or attach one via with_specs"
                    .into(),
            })?
            .to_vec();
        let params = self.export_params();
        ExecutionPlan::compile(&specs, &params, self.input_shape(), opts)
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use mlcnn_nn::zoo;

    fn lenet() -> (Vec<LayerSpec>, Vec<Tensor<f32>>, Shape4) {
        let specs = zoo::lenet5_spec(10);
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = mlcnn_nn::spec::build_network(&specs, input, 7).unwrap();
        let params = net.export_params();
        (specs, params, input)
    }

    fn forward_bits(plan: &ExecutionPlan, input: Shape4) -> Vec<u32> {
        let x = Tensor::from_fn(input, |_, c, h, w| {
            (((c * 31 + h * 7 + w) % 97) as f32 - 48.0) / 40.0
        });
        let mut ws = Workspace::for_plan(plan, 1);
        plan.forward(&x, &mut ws)
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }

    #[test]
    fn shared_compile_is_bitwise_identical_and_verifies() {
        let (specs, params, input) = lenet();
        for precision in Precision::ALL {
            let opts = PlanOptions::default().with_precision(precision);
            let direct = ExecutionPlan::compile(&specs, &params, input, opts).unwrap();
            let store = SegmentStore::new();
            let shared =
                ExecutionPlan::compile_shared(&specs, &params, input, opts, &store).unwrap();
            shared
                .verify()
                .unwrap_or_else(|e| panic!("{precision}: {e}"));
            assert_eq!(
                forward_bits(&direct, input),
                forward_bits(&shared, input),
                "{precision}"
            );
        }
    }

    #[test]
    fn recompiling_through_one_store_shares_every_segment() {
        let (specs, params, input) = lenet();
        let store = SegmentStore::new();
        let opts = PlanOptions::default();
        let a = ExecutionPlan::compile_shared(&specs, &params, input, opts, &store).unwrap();
        let b = ExecutionPlan::compile_shared(&specs, &params, input, opts, &store).unwrap();
        let (ha, hb) = (a.param_handles(), b.param_handles());
        assert!(!ha.is_empty());
        assert_eq!(ha.len(), hb.len());
        for (x, y) in ha.iter().zip(&hb) {
            assert_eq!(x.addr(), y.addr());
            assert_eq!(x.bytes(), y.bytes());
        }
        let stats = store.stats();
        assert_eq!(stats.misses as usize, stats.live);
        assert_eq!(stats.hits, stats.misses); // second compile hit every key
                                              // dedup'd resident bytes: two plans, one copy
        assert_eq!(stats.resident_bytes, a.resident_param_bytes());
        assert_eq!(a.resident_param_bytes(), b.resident_param_bytes());
    }

    #[test]
    fn different_precisions_never_share_segments() {
        let (specs, params, input) = lenet();
        let store = SegmentStore::new();
        let a =
            ExecutionPlan::compile_shared(&specs, &params, input, PlanOptions::default(), &store)
                .unwrap();
        let b = ExecutionPlan::compile_shared(
            &specs,
            &params,
            input,
            PlanOptions::default().with_precision(Precision::Fp16),
            &store,
        )
        .unwrap();
        let addrs: std::collections::HashSet<usize> =
            a.param_handles().iter().map(|h| h.addr()).collect();
        assert!(b.param_handles().iter().all(|h| !addrs.contains(&h.addr())));
        assert_eq!(store.stats().hits, 0);
    }

    #[test]
    fn dropping_the_last_plan_releases_shared_segments() {
        let (specs, params, input) = lenet();
        let store = SegmentStore::new();
        let opts = PlanOptions::default();
        let a = ExecutionPlan::compile_shared(&specs, &params, input, opts, &store).unwrap();
        let b = ExecutionPlan::compile_shared(&specs, &params, input, opts, &store).unwrap();
        let weak: Vec<_> = a.param_handles().iter().map(|h| h.downgrade()).collect();
        drop(a);
        assert!(weak.iter().all(|w| w.upgrade().is_some()), "b still owns");
        drop(b);
        assert!(
            weak.iter().all(|w| w.upgrade().is_none()),
            "all owners gone"
        );
        let s = store.stats();
        assert_eq!((s.live, s.resident_bytes), (0, 0));
    }

    #[test]
    fn index_conflict_surfaces_as_r006() {
        let (specs, params, input) = lenet();
        let store = SegmentStore::new();
        let opts = PlanOptions::default();
        let _keep = ExecutionPlan::compile_shared(&specs, &params, input, opts, &store).unwrap();
        for key in store.keys_for_tests() {
            assert!(store.corrupt_fingerprint_for_tests(&key));
        }
        let err = match ExecutionPlan::compile_shared(&specs, &params, input, opts, &store) {
            Err(e) => e,
            Ok(_) => panic!("corrupted index must fail the compile"),
        };
        assert!(err.to_string().contains("error[R006]"), "{err}");
    }
}
