//! The mutable half of plan execution: a reusable arena of ping-pong
//! activation buffers plus kernel scratch, sized from a compiled plan so
//! steady-state forwards never touch the allocator.

use super::{ExecutionPlan, Op};
use crate::fused::FusedScratch;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Reusable execution arena for [`ExecutionPlan::forward`].
///
/// Holds two ping-pong activation buffers (each large enough for the
/// biggest intermediate at the workspace's batch size), one im2col scratch
/// matrix, and the fused-operator scratch planes. All buffers grow on
/// demand and never shrink, so after the first forward at a given batch
/// size every subsequent forward is allocation-free.
///
/// The workspace is the *mutable* half of execution — the plan itself is
/// immutable and `Send + Sync`; give each thread its own `Workspace` to
/// share one plan across threads.
#[derive(Debug, Default)]
pub struct Workspace {
    pub(crate) a: Vec<f32>,
    pub(crate) b: Vec<f32>,
    pub(crate) cols: Vec<f32>,
    pub(crate) fused: FusedScratch<f32>,
    batch: usize,
}

impl Workspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for `plan` at up to `max_batch` items per
    /// forward, so even the first call allocates nothing.
    pub fn for_plan(plan: &ExecutionPlan, max_batch: usize) -> Self {
        let mut ws = Self::new();
        ws.ensure(plan, max_batch.max(1));
        ws
    }

    /// Grow (never shrink) every buffer to what `plan` needs at `batch`.
    pub(crate) fn ensure(&mut self, plan: &ExecutionPlan, batch: usize) {
        let batch = batch.max(1);
        let need = plan.buf_item_len * batch;
        if self.a.len() < need {
            self.a.resize(need, 0.0);
        }
        if self.b.len() < need {
            self.b.resize(need, 0.0);
        }
        if self.cols.len() < plan.cols_item_len {
            self.cols.resize(plan.cols_item_len, 0.0);
        }
        for step in &plan.steps {
            if let Op::Fused { geom, .. } = &step.op {
                self.fused.ensure(geom, step.in_shape.c);
            }
        }
        self.batch = self.batch.max(batch);
    }

    /// Largest batch size this workspace has been sized for.
    pub fn max_batch(&self) -> usize {
        self.batch
    }

    /// Total f32 capacity of the activation and im2col buffers — stable
    /// across repeated forwards at the same batch size, which is what the
    /// zero-steady-state-allocation tests assert on.
    pub fn buffer_capacity(&self) -> usize {
        self.a.capacity() + self.b.capacity() + self.cols.capacity()
    }
}

/// A shared, thread-safe pool of [`Workspace`]s.
///
/// `ExecutionPlan::forward` needs one mutable workspace per concurrent
/// caller. A pool lets many threads (serving workers, rayon batch items)
/// share a small set of warm arenas instead of either contending on a
/// single workspace or allocating a fresh one per call: [`Self::lease`]
/// pops an idle workspace (or creates one when the pool is empty — leasing
/// never blocks), and the [`PooledWorkspace`] guard returns it on drop.
///
/// The pool therefore holds at most as many workspaces as the peak number
/// of concurrent leases, and steady-state leasing is allocation-free.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    idle: Mutex<Vec<Workspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created on first lease.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool pre-warmed with `count` workspaces, each sized for `plan` at
    /// `max_batch` items, so even first leases are allocation-free.
    pub fn for_plan(plan: &ExecutionPlan, count: usize, max_batch: usize) -> Self {
        let pool = Self::new();
        {
            let mut idle = pool.idle.lock().unwrap_or_else(|e| e.into_inner());
            idle.extend((0..count).map(|_| Workspace::for_plan(plan, max_batch)));
        }
        pool
    }

    /// Borrow a workspace: pops an idle one, or creates a cold one when
    /// none is free. Never blocks behind another lease.
    pub fn lease(&self) -> PooledWorkspace<'_> {
        let ws = self
            .idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Number of idle (checked-in) workspaces currently held.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn checkin(&self, ws: Workspace) {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).push(ws);
    }
}

/// RAII lease of a [`Workspace`] from a [`WorkspacePool`]; derefs to the
/// workspace and returns it to the pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'a> {
    pool: &'a WorkspacePool,
    ws: Option<Workspace>,
}

impl Deref for PooledWorkspace<'_> {
    type Target = Workspace;
    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.checkin(ws);
        }
    }
}
