//! Content-addressed sharing of baked plan segments.
//!
//! A [`SegmentStore`] is an interner over the *baked* parameter blocks a
//! plan step carries — the quantized conv weight + bias, the pre-transposed
//! quantized linear weight, or a whole [`FusedConvPool`] kernel. Keys are
//! SHA-256 content hashes over the segment's source form (geometry that
//! shapes the baked bytes, the precision, and the FP32 parameters), so two
//! plans compiled through the same store — different revisions of one
//! model, or structurally identical layers of *different* models — share
//! one `Arc` per unique layer instead of each owning a copy.
//!
//! The store holds only [`Weak`] references: plans own their segments, the
//! index never pins memory. When the last plan referencing a segment is
//! dropped (hot-swap drain completing, cache eviction), the bytes are
//! freed and the stale index entry is reaped on the next lookup or
//! [`SegmentStore::stats`] scan. Resident bytes therefore track *live
//! unique layers*, which is exactly the density metric `BENCH_density.json`
//! records.
//!
//! Every cache hit is cross-checked against a structural fingerprint
//! (form, weight length, bias length). A mismatch means the content hash
//! collided or the index was corrupted; it surfaces as a deny-coded
//! `error[R006]` compile error rather than silently aliasing weights.

use crate::fused::FusedConvPool;
use mlcnn_tensor::{Result, Tensor, TensorError};
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, Weak};

/// A type-erased, owning handle on one shared parameter segment of a
/// compiled plan (see `ExecutionPlan::param_handles`). Holding the handle
/// keeps the segment's bytes resident; [`ParamHandle::addr`] is stable
/// for a segment's lifetime and equal across every plan sharing it.
pub struct ParamHandle {
    arc: Arc<dyn Any + Send + Sync>,
    bytes: usize,
}

impl ParamHandle {
    pub(crate) fn new<T: Any + Send + Sync>(arc: Arc<T>, bytes: usize) -> Self {
        Self { arc, bytes }
    }

    /// Identity of the shared allocation: equal addresses mean the same
    /// resident segment.
    pub fn addr(&self) -> usize {
        Arc::as_ptr(&self.arc).cast::<()>().addr()
    }

    /// Parameter bytes the segment keeps resident.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Downgrade to a weak observer: upgrades succeed exactly while some
    /// plan (or handle) still owns the segment — the probe drain tests use
    /// to assert shared weights are released only after the last owner.
    pub fn downgrade(&self) -> Weak<dyn Any + Send + Sync> {
        Arc::downgrade(&self.arc)
    }
}

/// A content hash key: SHA-256 over the segment's source form.
pub type SegmentKey = [u8; 32];

/// Structural fingerprint cross-checked on every index hit, so a hash
/// collision can never alias one layer's weights to another's geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fingerprint {
    /// Segment form discriminant (conv / linear / fused).
    pub form: u8,
    /// Baked weight length in elements.
    pub weight_len: usize,
    /// Bias length in elements.
    pub bias_len: usize,
}

/// One baked, shareable parameter block.
#[derive(Debug, Clone)]
pub(crate) enum Segment {
    /// im2col+GEMM conv: quantized weight and bias.
    Conv {
        weight: Arc<Tensor<f32>>,
        bias: Arc<Vec<f32>>,
    },
    /// Linear: pre-transposed quantized weight and bias.
    Linear {
        weight_t: Arc<Vec<f32>>,
        bias: Arc<Vec<f32>>,
    },
    /// Whole fused conv-pool kernel (weights + config; geometry stays
    /// per-plan, so one kernel serves any input size).
    Fused { kernel: Arc<FusedConvPool<f32>> },
}

impl Segment {
    fn fingerprint(&self) -> Fingerprint {
        match self {
            Segment::Conv { weight, bias } => Fingerprint {
                form: 0,
                weight_len: weight.len(),
                bias_len: bias.len(),
            },
            Segment::Linear { weight_t, bias } => Fingerprint {
                form: 1,
                weight_len: weight_t.len(),
                bias_len: bias.len(),
            },
            Segment::Fused { kernel } => Fingerprint {
                form: 2,
                weight_len: kernel.weight().len(),
                bias_len: kernel.bias().len(),
            },
        }
    }

    /// Parameter bytes this segment keeps resident.
    pub(crate) fn bytes(&self) -> usize {
        let f = self.fingerprint();
        (f.weight_len + f.bias_len) * std::mem::size_of::<f32>()
    }

    fn downgrade(&self) -> WeakSegment {
        match self {
            Segment::Conv { weight, bias } => WeakSegment::Conv {
                weight: Arc::downgrade(weight),
                bias: Arc::downgrade(bias),
            },
            Segment::Linear { weight_t, bias } => WeakSegment::Linear {
                weight_t: Arc::downgrade(weight_t),
                bias: Arc::downgrade(bias),
            },
            Segment::Fused { kernel } => WeakSegment::Fused {
                kernel: Arc::downgrade(kernel),
            },
        }
    }
}

enum WeakSegment {
    Conv {
        weight: Weak<Tensor<f32>>,
        bias: Weak<Vec<f32>>,
    },
    Linear {
        weight_t: Weak<Vec<f32>>,
        bias: Weak<Vec<f32>>,
    },
    Fused {
        kernel: Weak<FusedConvPool<f32>>,
    },
}

impl WeakSegment {
    fn upgrade(&self) -> Option<Segment> {
        match self {
            WeakSegment::Conv { weight, bias } => Some(Segment::Conv {
                weight: weight.upgrade()?,
                bias: bias.upgrade()?,
            }),
            WeakSegment::Linear { weight_t, bias } => Some(Segment::Linear {
                weight_t: weight_t.upgrade()?,
                bias: bias.upgrade()?,
            }),
            WeakSegment::Fused { kernel } => Some(Segment::Fused {
                kernel: kernel.upgrade()?,
            }),
        }
    }
}

struct EntryRec {
    seg: WeakSegment,
    fingerprint: Fingerprint,
    bytes: usize,
}

struct Inner {
    entries: HashMap<SegmentKey, EntryRec>,
    hits: u64,
    misses: u64,
}

/// Aggregate counters for a [`SegmentStore`]. `resident_bytes` counts the
/// parameter bytes of *live* unique segments — segments whose owning plans
/// have all been dropped no longer count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Unique segments currently alive (referenced by at least one plan).
    pub live: usize,
    /// Lookups served from an existing live segment.
    pub hits: u64,
    /// Lookups that had to bake a new segment.
    pub misses: u64,
    /// Parameter bytes of the live unique segments.
    pub resident_bytes: usize,
}

/// Content-addressed interner for baked plan segments. See the
/// [module docs](self).
///
/// Thread-safe: compiles on many threads share one store; concurrent
/// lookups of the same key bake at most once.
pub struct SegmentStore {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for SegmentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentStore {
    /// Fresh, empty store.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Look up `key`, baking (and indexing) the segment on a miss. A hit
    /// is cross-checked against `expect`; a fingerprint conflict is an
    /// `error[R006]` — content-hash collision or index corruption — and
    /// fails the compile rather than aliasing weights.
    pub(crate) fn get_or_bake(
        &self,
        key: SegmentKey,
        expect: Fingerprint,
        bake: impl FnOnce() -> Result<Segment>,
    ) -> Result<Segment> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(rec) = inner.entries.get(&key) {
            if let Some(seg) = rec.seg.upgrade() {
                if rec.fingerprint != expect {
                    return Err(conflict(&key, rec.fingerprint, expect));
                }
                inner.hits += 1;
                return Ok(seg);
            }
        }
        // miss (or dead entry): bake under the lock so racing compiles of
        // the same content produce exactly one resident copy
        let seg = bake()?;
        let fingerprint = seg.fingerprint();
        if fingerprint != expect {
            return Err(conflict(&key, fingerprint, expect));
        }
        inner.misses += 1;
        inner.entries.insert(
            key,
            EntryRec {
                seg: seg.downgrade(),
                fingerprint,
                bytes: seg.bytes(),
            },
        );
        Ok(seg)
    }

    /// Scan the index: reap dead entries, return live counters.
    pub fn stats(&self) -> SegmentStats {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.retain(|_, rec| rec.seg.upgrade().is_some());
        let (hits, misses) = (inner.hits, inner.misses);
        let live = inner.entries.len();
        let resident_bytes = inner.entries.values().map(|r| r.bytes).sum();
        SegmentStats {
            live,
            hits,
            misses,
            resident_bytes,
        }
    }

    /// Test hook: overwrite `key`'s fingerprint so gate tests can exercise
    /// the R006 conflict path on an otherwise healthy store. Hidden —
    /// nothing outside a test should ever corrupt the index.
    #[doc(hidden)]
    pub fn corrupt_fingerprint_for_tests(&self, key: &SegmentKey) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.entries.get_mut(key) {
            Some(rec) => {
                rec.fingerprint.weight_len = rec.fingerprint.weight_len.wrapping_add(1);
                true
            }
            None => false,
        }
    }

    /// Test hook: the raw index keys currently present (live or dead).
    #[doc(hidden)]
    pub fn keys_for_tests(&self) -> Vec<SegmentKey> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.keys().copied().collect()
    }
}

fn conflict(key: &SegmentKey, indexed: Fingerprint, layer: Fingerprint) -> TensorError {
    TensorError::BadGeometry {
        reason: format!(
            "error[R006]: dedup index conflict for content hash {}: indexed segment \
             (form {}, weight {}, bias {}) disagrees with the layer being compiled \
             (form {}, weight {}, bias {}); content-hash collision or store corruption",
            crate::content::hex(key),
            indexed.form,
            indexed.weight_len,
            indexed.bias_len,
            layer.form,
            layer.weight_len,
            layer.bias_len,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::Shape4;

    fn conv_segment(fill: f32) -> Segment {
        let weight = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![fill; 4]).unwrap();
        Segment::Conv {
            weight: Arc::new(weight),
            bias: Arc::new(vec![fill]),
        }
    }

    fn fp() -> Fingerprint {
        Fingerprint {
            form: 0,
            weight_len: 4,
            bias_len: 1,
        }
    }

    #[test]
    fn second_lookup_shares_the_first_bake() {
        let store = SegmentStore::new();
        let a = store
            .get_or_bake([1; 32], fp(), || Ok(conv_segment(1.0)))
            .unwrap();
        let b = store
            .get_or_bake([1; 32], fp(), || panic!("must not re-bake"))
            .unwrap();
        match (&a, &b) {
            (Segment::Conv { weight: wa, .. }, Segment::Conv { weight: wb, .. }) => {
                assert!(Arc::ptr_eq(wa, wb));
            }
            _ => unreachable!(),
        }
        let s = store.stats();
        assert_eq!((s.live, s.hits, s.misses), (1, 1, 1));
        assert_eq!(s.resident_bytes, 5 * 4);
    }

    #[test]
    fn dropping_every_owner_frees_the_segment() {
        let store = SegmentStore::new();
        let seg = store
            .get_or_bake([2; 32], fp(), || Ok(conv_segment(2.0)))
            .unwrap();
        assert_eq!(store.stats().live, 1);
        drop(seg);
        let s = store.stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.resident_bytes, 0);
        // a fresh lookup re-bakes
        let _seg = store
            .get_or_bake([2; 32], fp(), || Ok(conv_segment(2.0)))
            .unwrap();
        assert_eq!(store.stats().misses, 2);
    }

    #[test]
    fn fingerprint_conflict_is_an_r006_error() {
        let store = SegmentStore::new();
        let _keep = store
            .get_or_bake([3; 32], fp(), || Ok(conv_segment(3.0)))
            .unwrap();
        assert!(store.corrupt_fingerprint_for_tests(&[3; 32]));
        let err = store
            .get_or_bake([3; 32], fp(), || Ok(conv_segment(3.0)))
            .unwrap_err();
        assert!(err.to_string().contains("R006"), "{err}");
    }

    #[test]
    fn distinct_keys_stay_distinct() {
        let store = SegmentStore::new();
        let a = store
            .get_or_bake([4; 32], fp(), || Ok(conv_segment(4.0)))
            .unwrap();
        let b = store
            .get_or_bake([5; 32], fp(), || Ok(conv_segment(5.0)))
            .unwrap();
        match (&a, &b) {
            (Segment::Conv { weight: wa, .. }, Segment::Conv { weight: wb, .. }) => {
                assert!(!Arc::ptr_eq(wa, wb));
            }
            _ => unreachable!(),
        }
        assert_eq!(store.stats().live, 2);
    }
}
