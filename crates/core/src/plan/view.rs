//! Read-only plan introspection and the post-lowering self-check.
//!
//! [`ExecutionPlan::view`] exports a compiled plan as an
//! [`mlcnn_check::PlanView`] — shapes, geometry, rounding flags and
//! *profiles* of the baked parameters (lengths, value ranges, per-channel
//! weight aggregates), never the weights themselves. The view is what the
//! `P0xx` dataflow verifier and the `Q0xx` range analysis run over, so
//! `mlcnn-check` needs no access to this crate's `pub(crate)` internals
//! (and no dependency on this crate — the data model lives in check, the
//! builder here).
//!
//! [`ExecutionPlan::verify`] is the deny-mode gate: registry
//! trial-compile and `Router` publish run it so a corrupt or hostile plan
//! is rejected before any service can serve it. `compile` itself re-runs
//! the verifier as a debug assertion — the compiler checking its own
//! output — so any lowering bug that breaks a plan invariant fails loudly
//! in every debug build rather than corrupting an inference.

use super::{ExecutionPlan, Op};
use mlcnn_check::{check_plan, ChannelProfile, OpView, ParamProfile, PlanView, Reporter, StepView};

/// Per-output-channel aggregates of a conv-style weight laid out
/// `out_c × (in_c·k·k)` row-major, sign-split per input channel (`k²`
/// taps per group) so range analysis can keep per-channel intervals.
fn conv_channels(weight: &[f32], bias: &[f32], out_c: usize, in_c: usize) -> Vec<ChannelProfile> {
    if out_c == 0 || !weight.len().is_multiple_of(out_c) || bias.len() != out_c {
        return Vec::new(); // the verifier flags the mismatch as P005
    }
    let per = weight.len() / out_c;
    (0..out_c)
        .map(|c| ChannelProfile::grouped(&weight[c * per..(c + 1) * per], in_c, bias[c]))
        .collect()
}

/// Per-output-feature aggregates of a linear weight stored *transposed*
/// (`in × out` row-major): feature `c`'s weights are the strided column
/// `weight_t[j·out + c]`, sign-split per input feature (group size 1).
fn linear_channels(
    weight_t: &[f32],
    bias: &[f32],
    in_f: usize,
    out_f: usize,
) -> Vec<ChannelProfile> {
    if out_f == 0 || weight_t.len() != in_f * out_f || bias.len() != out_f {
        return Vec::new();
    }
    let mut column = vec![0.0_f32; in_f];
    (0..out_f)
        .map(|c| {
            for (j, slot) in column.iter_mut().enumerate() {
                *slot = weight_t[j * out_f + c];
            }
            ChannelProfile::grouped(&column, in_f, bias[c])
        })
        .collect()
}

impl ExecutionPlan {
    /// Export the plan's structure for static analysis. See the
    /// [module docs](self).
    pub fn view(&self) -> PlanView {
        let steps = self
            .steps
            .iter()
            .map(|step| {
                let op = match &step.op {
                    Op::Fused { kernel, geom } => OpView::Fused {
                        k: geom.k,
                        stride: geom.conv_stride,
                        pad: geom.pad,
                        pool: geom.pool,
                        relu: kernel.relu(),
                        weight: ParamProfile::of(kernel.weight().as_slice()),
                        bias: ParamProfile::of(kernel.bias()),
                        channels: conv_channels(
                            kernel.weight().as_slice(),
                            kernel.bias(),
                            kernel.weight().shape().n,
                            kernel.weight().shape().c,
                        ),
                    },
                    Op::Conv { weight, bias, geom } => OpView::Conv {
                        k: geom.k_h,
                        stride: geom.stride,
                        pad: geom.pad,
                        weight: ParamProfile::of(weight.as_slice()),
                        bias: ParamProfile::of(bias),
                        channels: conv_channels(
                            weight.as_slice(),
                            bias,
                            weight.shape().n,
                            weight.shape().c,
                        ),
                    },
                    Op::ReLU => OpView::ReLU,
                    Op::Sigmoid => OpView::Sigmoid,
                    Op::AvgPool(g) => OpView::AvgPool {
                        window: g.window,
                        stride: g.stride,
                    },
                    Op::MaxPool(g) => OpView::MaxPool {
                        window: g.window,
                        stride: g.stride,
                    },
                    Op::Flatten => OpView::Flatten,
                    Op::Linear {
                        weight_t,
                        bias,
                        in_features,
                        out_features,
                    } => OpView::Linear {
                        in_features: *in_features,
                        out_features: *out_features,
                        weight: ParamProfile::of(weight_t),
                        bias: ParamProfile::of(bias),
                        channels: linear_channels(weight_t, bias, *in_features, *out_features),
                    },
                };
                StepView {
                    op,
                    in_shape: step.in_shape,
                    out_shape: step.out_shape,
                    round_after: step.round_after,
                }
            })
            .collect();
        PlanView {
            precision: self.precision,
            input_shape: self.input_shape,
            output_shape: self.output_shape,
            buf_item_len: self.buf_item_len,
            cols_item_len: self.cols_item_len,
            steps,
        }
    }

    /// Run the `P0xx` dataflow verifier over this plan, failing on any
    /// denial (warnings pass). The error is the `"; "`-joined denial
    /// diagnostics, the same summary form `check_compile_summary` uses —
    /// this is the gate registry trial-compile and `Router` publish run
    /// before a plan can reach a `Service`.
    pub fn verify(&self) -> Result<(), String> {
        let mut reporter = Reporter::new();
        check_plan(&self.view(), &mut reporter);
        if reporter.has_deny() {
            Err(reporter
                .into_diagnostics()
                .into_iter()
                .filter(|d| d.severity == mlcnn_check::Severity::Deny)
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; "))
        } else {
            Ok(())
        }
    }

    /// Test hook: corrupt the arena bound so gate tests can exercise the
    /// rejection path on an otherwise valid plan. Hidden — nothing outside
    /// a test should ever shrink a compiled plan's arena.
    #[doc(hidden)]
    pub fn corrupt_buf_item_len_for_tests(&mut self, len: usize) {
        self.buf_item_len = len;
    }

    /// Test hook: flip one step's `round_after` flag (see
    /// [`Self::corrupt_buf_item_len_for_tests`]).
    #[doc(hidden)]
    pub fn corrupt_round_after_for_tests(&mut self, step: usize) {
        let s = &mut self.steps[step];
        s.round_after = !s.round_after;
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::{ExecutionPlan, PlanOptions};
    use mlcnn_nn::zoo;
    use mlcnn_quant::Precision;
    use mlcnn_tensor::Shape4;

    fn lenet_plan(precision: Precision) -> ExecutionPlan {
        let specs = zoo::lenet5_spec(10);
        let input = Shape4::new(1, 3, 32, 32);
        let mut net = mlcnn_nn::spec::build_network(&specs, input, 7).unwrap();
        let params = net.export_params();
        ExecutionPlan::compile(
            &specs,
            &params,
            input,
            PlanOptions::default().with_precision(precision),
        )
        .unwrap()
    }

    #[test]
    fn compiled_plans_verify_clean_at_every_precision() {
        for p in Precision::ALL {
            let plan = lenet_plan(p);
            plan.verify().unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn view_mirrors_plan_structure() {
        let plan = lenet_plan(Precision::Fp32);
        let view = plan.view();
        assert_eq!(view.steps.len(), plan.len());
        assert_eq!(view.input_shape, plan.input_shape());
        assert_eq!(view.output_shape, plan.output_shape());
        assert_eq!(view.precision, plan.precision());
        // lenet ends in Linear: its channel profiles cover every output
        let last = view.steps.last().unwrap();
        match &last.op {
            mlcnn_check::OpView::Linear {
                out_features,
                channels,
                ..
            } => assert_eq!(channels.len(), *out_features),
            other => panic!("unexpected last op {}", other.name()),
        }
    }

    #[test]
    fn corrupted_arena_fails_verify_with_p003() {
        let mut plan = lenet_plan(Precision::Fp32);
        plan.corrupt_buf_item_len_for_tests(1);
        let err = plan.verify().unwrap_err();
        assert!(err.contains("P003"), "{err}");
    }

    #[test]
    fn corrupted_rounding_fails_verify_with_p009() {
        let mut plan = lenet_plan(Precision::Fp16);
        plan.corrupt_round_after_for_tests(0);
        let err = plan.verify().unwrap_err();
        assert!(err.contains("P009"), "{err}");
    }

    #[test]
    fn overflow_guard_reports_p008_instead_of_panicking() {
        // a spec whose flatten length arithmetic would overflow usize is
        // unrepresentable through build_network (allocation fails long
        // before); exercise the checked path through the arena summation
        // instead: huge-but-allocatable shapes times batch products.
        let specs = vec![mlcnn_nn::LayerSpec::Flatten];
        let input = Shape4::new(1, 1, 1, 8);
        let plan = ExecutionPlan::compile(&specs, &[], input, PlanOptions::default()).unwrap();
        assert_eq!(plan.output_shape(), Shape4::new(1, 1, 1, 8));
        assert!(plan.verify().is_ok());
    }

    #[test]
    fn qrange_report_covers_every_step() {
        let plan = lenet_plan(Precision::Int8);
        let mut r = mlcnn_check::Reporter::new();
        let report =
            mlcnn_check::check_qrange(&plan.view(), &mlcnn_check::QRangeOptions::default(), &mut r);
        assert_eq!(report.steps.len(), plan.len());
        assert!(report.steps.iter().all(|s| s.lo <= s.hi));
        // every scale the future requantizer would bake is finite
        assert!(report.steps.iter().all(|s| s.int8_scale.is_finite()));
    }
}
