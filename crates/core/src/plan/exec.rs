//! Plan execution: one dispatch site over the shared `_into` slice
//! kernels, ping-ponging between the workspace's two activation buffers.
//!
//! Every op body here calls the *same* kernel the legacy paths call
//! (`matmul_into`, `im2col_into`, the pool plane kernels,
//! `FusedConvPool::forward_item_into`, the quantizer slice forms), with
//! the same geometry and the same loop order — bitwise equivalence with
//! `Network::forward` / `FusedNetwork` / `forward_quantized` holds by
//! construction, and the golden suite in `tests/plan_equivalence.rs`
//! enforces it.

use super::{ExecutionPlan, Op, Step, Workspace};
use crate::fused::FusedScratch;
use crate::quantized::round_f16_slice;
use mlcnn_quant::{dorefa, Precision};
use mlcnn_tensor::im2col::im2col_into;
use mlcnn_tensor::linalg::matmul_into;
use mlcnn_tensor::pool::{avg_pool_plane_into, max_pool_plane_into};
use mlcnn_tensor::scalar::Scalar;
use mlcnn_tensor::{Result, Tensor};

/// Execute `plan` over `input`, writing the logits into `out` (which must
/// hold exactly `batch × output_item` elements). The only buffers touched
/// are the workspace's — no allocation once the workspace is warm.
pub(crate) fn run(
    plan: &ExecutionPlan,
    input: &Tensor<f32>,
    ws: &mut Workspace,
    out: &mut [f32],
) -> Result<()> {
    let batch = input.shape().n;
    ws.ensure(plan, batch);
    let in_item = plan.input_shape.len();
    let out_item = plan.output_shape.len();
    debug_assert_eq!(out.len(), batch * out_item);

    // disjoint field borrows: a/b ping-pong, cols + fused are kernel scratch
    let Workspace {
        a, b, cols, fused, ..
    } = ws;
    a[..batch * in_item].copy_from_slice(input.as_slice());
    let mut cur_in_a = true;

    for step in &plan.steps {
        let in_len = batch * step.in_shape.len();
        let out_len = batch * step.out_shape.len();
        match &step.op {
            // shape bookkeeping only: the data does not move
            Op::Flatten => {}
            // activations run in place on the current buffer
            Op::ReLU => {
                let cur = if cur_in_a { &mut *a } else { &mut *b };
                for v in cur[..in_len].iter_mut() {
                    *v = v.relu();
                }
            }
            Op::Sigmoid => {
                let cur = if cur_in_a { &mut *a } else { &mut *b };
                for v in cur[..in_len].iter_mut() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            op => {
                let (src, dst): (&[f32], &mut [f32]) = if cur_in_a {
                    (&a[..in_len], &mut b[..out_len])
                } else {
                    (&b[..in_len], &mut a[..out_len])
                };
                exec_op(op, step, batch, src, dst, cols, fused)?;
                cur_in_a = !cur_in_a;
            }
        }
        if step.round_after {
            let cur = if cur_in_a { &mut *a } else { &mut *b };
            round_slice(&mut cur[..out_len], plan.precision);
        }
    }

    let cur = if cur_in_a { &a[..] } else { &b[..] };
    out.copy_from_slice(&cur[..batch * out_item]);
    Ok(())
}

/// Re-round activations through the precision's grid — the datapath
/// semantics of `forward_quantized`, in slice form. INT8's scale is the
/// max over the whole (batched) slice, exactly like the legacy
/// whole-tensor quantizer.
fn round_slice(xs: &mut [f32], precision: Precision) {
    match precision {
        Precision::Fp32 => {}
        Precision::Fp16 => round_f16_slice(xs),
        Precision::Int8 => dorefa::quantize_activations_ptq_slice(xs, 8),
    }
}

fn exec_op(
    op: &Op,
    step: &Step,
    batch: usize,
    src: &[f32],
    dst: &mut [f32],
    cols: &mut [f32],
    fused: &mut FusedScratch<f32>,
) -> Result<()> {
    let in_item = step.in_shape.len();
    let out_item = step.out_shape.len();
    match op {
        Op::Fused { kernel, geom } => {
            for n in 0..batch {
                kernel.forward_item_into(
                    &src[n * in_item..(n + 1) * in_item],
                    geom,
                    &mut dst[n * out_item..(n + 1) * out_item],
                    fused,
                );
            }
        }
        Op::Conv { weight, bias, geom } => {
            let m = step.out_shape.c;
            let k = step.in_shape.c * geom.taps();
            let ncols = geom.out_len();
            let cbuf = &mut cols[..k * ncols];
            for n in 0..batch {
                im2col_into(
                    &src[n * in_item..(n + 1) * in_item],
                    step.in_shape.c,
                    geom,
                    cbuf,
                );
                let ditem = &mut dst[n * out_item..(n + 1) * out_item];
                matmul_into(weight.as_slice(), cbuf, ditem, m, k, ncols);
                for (ch, bv) in bias.iter().enumerate() {
                    for v in ditem[ch * ncols..(ch + 1) * ncols].iter_mut() {
                        *v += *bv;
                    }
                }
            }
        }
        Op::AvgPool(g) => {
            let in_plane = g.in_h * g.in_w;
            let out_plane = g.out_h * g.out_w;
            let inv_area = 1.0 / (g.area() as f32);
            for p in 0..batch * step.in_shape.c {
                avg_pool_plane_into(
                    &src[p * in_plane..(p + 1) * in_plane],
                    g,
                    inv_area,
                    &mut dst[p * out_plane..(p + 1) * out_plane],
                );
            }
        }
        Op::MaxPool(g) => {
            let in_plane = g.in_h * g.in_w;
            let out_plane = g.out_h * g.out_w;
            for p in 0..batch * step.in_shape.c {
                max_pool_plane_into(
                    &src[p * in_plane..(p + 1) * in_plane],
                    g,
                    &mut dst[p * out_plane..(p + 1) * out_plane],
                    None,
                );
            }
        }
        Op::Linear {
            weight_t,
            bias,
            in_features,
            out_features,
        } => {
            matmul_into(src, weight_t, dst, batch, *in_features, *out_features);
            for bi in 0..batch {
                for (o, bv) in bias.iter().enumerate() {
                    dst[bi * out_features + o] += *bv;
                }
            }
        }
        Op::ReLU | Op::Sigmoid | Op::Flatten => unreachable!("executed in place by run()"),
    }
    Ok(())
}
