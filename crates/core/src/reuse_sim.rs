//! Memoized ground-truth simulator of MLCNN's addition-reuse schemes.
//!
//! The closed forms in [`crate::analytic`] were derived by hand from the
//! paper's tables; this module *executes* the reuse bookkeeping instead:
//! it walks one row of pooled outputs, records which half additions
//! (`HA[a][b] = Σ_dy I[a+dy·S][b]`) and block sums
//! (`G[a][b] = Σ_dx HA[a][b+dx·S]`) have already been computed under the
//! selected reuse mode, and counts the additions actually performed.
//! Property tests assert simulator == closed form across the paper's
//! parameter grid, so the two can only be wrong together.
//!
//! The simulator also generalizes the accounting to arbitrary pooling
//! windows `p` (the paper's tables fix p = 2; GoogLeNet's fused global
//! pool needs p = 8), which is what the per-layer op counting in
//! [`crate::opcount`] consumes.

use std::collections::HashSet;

/// Which reuse optimizations are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseMode {
    /// No reuse: every block sum recomputed from raw inputs.
    None,
    /// Local addition reuse: half additions shared within one pooled
    /// output.
    Lar,
    /// Global addition reuse: block sums shared across the row of pooled
    /// outputs.
    Gar,
    /// Both LAR and GAR.
    Both,
}

/// Addition counts for one row of pooled outputs, one input channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowAdds {
    /// Additions spent building block sums (half additions + combines).
    pub block_adds: u64,
    /// Major-accumulation additions (`K²−1` per pooled output).
    pub major_adds: u64,
}

impl RowAdds {
    /// Total additions.
    pub fn total(&self) -> u64 {
        self.block_adds + self.major_adds
    }
}

/// Number of pooled outputs in a row: conv output width `(D−K)/S + 1`
/// divided by the pool window `p` (non-overlapping pooling).
pub fn pooled_row_width_p(k: usize, d: usize, s: usize, p: usize) -> usize {
    assert!(s > 0 && k > 0 && p > 0 && d >= k);
    let conv_w = (d - k) / s + 1;
    if conv_w < p {
        0
    } else {
        (conv_w - p) / p + 1
    }
}

/// Simulate the additions needed for one row of pooled outputs on a
/// `D`-wide input with filter `K`, conv stride `S`, pool window `p`, under
/// `mode`.
///
/// Cost model (matching the paper's Section IV/V accounting):
/// * a fresh block sum costs `p² − 1` additions;
/// * with LAR/Both, a half addition costs `p − 1` and a combine `p − 1`,
///   and memoized values cost nothing;
/// * every pooled output then needs `K² − 1` major additions.
pub fn simulate_row(k: usize, d: usize, s: usize, p: usize, mode: ReuseMode) -> RowAdds {
    let n = pooled_row_width_p(k, d, s, p);
    let mut counts = RowAdds::default();
    // memo tables; (row, col) position keys.
    let mut ha_memo: HashSet<(usize, usize)> = HashSet::new();
    let mut g_memo: HashSet<(usize, usize)> = HashSet::new();
    let ha_cost = (p - 1) as u64;
    let g_combine_cost = (p - 1) as u64;
    let g_fresh_cost = (p * p - 1) as u64;

    for y in 0..n {
        if matches!(mode, ReuseMode::Lar) {
            // LAR reuse is local to one pooled output
            ha_memo.clear();
        }
        for i in 0..k {
            for j in 0..k {
                let a = i; // first output row (x = 0)
                let b = p * y * s + j;
                match mode {
                    ReuseMode::None => {
                        counts.block_adds += g_fresh_cost;
                    }
                    ReuseMode::Lar => {
                        // build from half additions, shared within this y
                        for dx in 0..p {
                            if ha_memo.insert((a, b + dx * s)) {
                                counts.block_adds += ha_cost;
                            }
                        }
                        counts.block_adds += g_combine_cost;
                    }
                    ReuseMode::Gar => {
                        // whole block sums shared across the row
                        if g_memo.insert((a, b)) {
                            counts.block_adds += g_fresh_cost;
                        }
                    }
                    ReuseMode::Both => {
                        if g_memo.insert((a, b)) {
                            for dx in 0..p {
                                if ha_memo.insert((a, b + dx * s)) {
                                    counts.block_adds += ha_cost;
                                }
                            }
                            counts.block_adds += g_combine_cost;
                        }
                    }
                }
            }
        }
        counts.major_adds += (k * k - 1) as u64;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    #[cfg(not(miri))]
    use proptest::prelude::*;

    #[test]
    fn pooled_width_agrees_with_analytic_for_p2() {
        for (k, d, s) in [
            (13usize, 28usize, 1usize),
            (3, 28, 1),
            (13, 28, 3),
            (13, 224, 1),
        ] {
            assert_eq!(
                pooled_row_width_p(k, d, s, 2),
                analytic::pooled_row_width(k, d, s),
                "k={k} d={d} s={s}"
            );
        }
    }

    #[test]
    fn no_reuse_matches_closed_form() {
        for (k, d, s) in [
            (3usize, 28usize, 1usize),
            (5, 28, 1),
            (13, 28, 1),
            (11, 40, 2),
        ] {
            let sim = simulate_row(k, d, s, 2, ReuseMode::None);
            let n = analytic::pooled_row_width(k, d, s) as u64;
            assert_eq!(sim.total(), n * analytic::adds_per_output_without(k));
        }
    }

    #[test]
    fn lar_matches_closed_form_per_output() {
        // one pooled output: restrict to d just wide enough for one output
        for k in [2usize, 3, 5, 7, 9, 11] {
            for s in 1..=k {
                // one pooled output needs conv width 2: D = K + S
                let d = k + s;
                let sim = simulate_row(k, d, s, 2, ReuseMode::Lar);
                assert_eq!(pooled_row_width_p(k, d, s, 2), 1);
                assert_eq!(
                    sim.total(),
                    analytic::adds_per_output_with_lar(k, s),
                    "k={k} s={s}"
                );
            }
        }
    }

    #[test]
    fn gar_matches_closed_form_on_paper_grid() {
        for (k, d, s) in [
            (3usize, 28usize, 1usize),
            (5, 28, 1),
            (13, 28, 1),
            (15, 28, 1),
            (17, 28, 1),
            (13, 28, 3),
            (13, 28, 5),
            (13, 32, 1),
            (13, 224, 1),
        ] {
            let sim = simulate_row(k, d, s, 2, ReuseMode::Gar);
            assert_eq!(
                sim.total(),
                analytic::row_adds_with_gar(k, d, s),
                "k={k} d={d} s={s}"
            );
        }
    }

    #[test]
    fn both_never_worse_than_single_reuses() {
        for (k, d, s) in [
            (3usize, 28usize, 1usize),
            (5, 16, 1),
            (13, 28, 1),
            (7, 30, 2),
        ] {
            let both = simulate_row(k, d, s, 2, ReuseMode::Both).total();
            let gar = simulate_row(k, d, s, 2, ReuseMode::Gar).total();
            let none = simulate_row(k, d, s, 2, ReuseMode::None).total();
            assert!(both <= gar, "k={k} d={d} s={s}");
            assert!(gar <= none, "k={k} d={d} s={s}");
        }
    }

    #[test]
    fn one_by_one_filters_get_no_block_reuse_benefit() {
        // the paper's DenseNet observation: K=1 fused layers show zero
        // addition reduction — every pooled output needs exactly one fresh
        // block sum either way.
        let none = simulate_row(1, 32, 1, 2, ReuseMode::None);
        let both = simulate_row(1, 32, 1, 2, ReuseMode::Both);
        assert_eq!(none.block_adds, both.block_adds);
        assert_eq!(none.major_adds, 0);
    }

    #[test]
    fn larger_pool_windows_cost_more_per_fresh_block() {
        let p2 = simulate_row(3, 32, 1, 2, ReuseMode::None);
        let p4 = simulate_row(3, 32, 1, 4, ReuseMode::None);
        // fewer outputs at p=4, but each block sum costs 15 adds not 3
        assert!(
            p4.block_adds / pooled_row_width_p(3, 32, 1, 4) as u64
                > p2.block_adds / pooled_row_width_p(3, 32, 1, 2) as u64
        );
    }

    #[test]
    fn zero_output_rows_cost_nothing() {
        // conv output narrower than the pool window: no pooled outputs
        let sim = simulate_row(5, 6, 1, 8, ReuseMode::Both);
        assert_eq!(sim.total(), 0);
    }

    #[cfg(not(miri))] // randomized sweeps are far too slow under the interpreter
    proptest! {
        #[test]
        fn prop_gar_exact_closed_form_holds(k in 2usize..16, extra in 0usize..40, s in 1usize..4) {
            let d = k + 2 * s + extra; // ensure at least one pooled output
            prop_assume!(analytic::pooled_row_width(k, d, s) >= 1);
            let sim = simulate_row(k, d, s, 2, ReuseMode::Gar);
            prop_assert_eq!(sim.total(), analytic::row_adds_with_gar_exact(k, d, s));
            // the paper's published form is a (sometimes loose) upper bound
            prop_assert!(analytic::row_adds_with_gar(k, d, s) >= sim.total());
        }

        #[test]
        fn prop_both_closed_form_is_tight_or_conservative(k in 2usize..12, extra in 0usize..30) {
            // the closed form for LAR+GAR is an upper bound built from the
            // same memo structure; the simulator can only do better or equal.
            let d = k + 2 + extra;
            let sim = simulate_row(k, d, 1, 2, ReuseMode::Both).total();
            let closed = analytic::row_adds_with_both(k, d, 1);
            prop_assert!(sim <= closed, "sim {} > closed {}", sim, closed);
            // and never better than 75% below the no-reuse cost (Eq. 7)
            let none = simulate_row(k, d, 1, 2, ReuseMode::None).total();
            prop_assert!(4 * sim >= none, "sim {} vs none {}", sim, none);
        }

        #[test]
        fn prop_reuse_modes_are_ordered(k in 1usize..10, extra in 0usize..20, s in 1usize..3, p in 2usize..5) {
            let d = p * (k + s) + extra;
            let none = simulate_row(k, d, s, p, ReuseMode::None).total();
            let lar = simulate_row(k, d, s, p, ReuseMode::Lar).total();
            let gar = simulate_row(k, d, s, p, ReuseMode::Gar).total();
            let both = simulate_row(k, d, s, p, ReuseMode::Both).total();
            prop_assert!(lar <= none);
            prop_assert!(gar <= none);
            prop_assert!(both <= lar);
            prop_assert!(both <= gar);
        }
    }
}
