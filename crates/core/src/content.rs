//! Content addressing: a dependency-free SHA-256 for hashing layer
//! parameters and specs.
//!
//! The registry's dedup index and the `.mlcnn` HASHES section both key on
//! a *content hash* of `(LayerSpec, params)`. CRC-32 (the codec's framing
//! check) is far too narrow for content addressing — two different layers
//! colliding would silently alias their weights — so the index uses
//! SHA-256, implemented here in safe Rust (FIPS 180-4, verified against
//! the standard test vectors below) to keep the workspace dependency-free.

/// Incremental SHA-256 hasher.
///
/// ```
/// use mlcnn_core::content::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     mlcnn_core::content::hex(&h.finish()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

/// Round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Sha256 {
    /// Fresh hasher at the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                return; // data exhausted without filling the block
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Absorb an `f32` slice as little-endian bytes — the canonical form
    /// the layer content hash uses for parameters.
    pub fn update_f32(&mut self, xs: &[f32]) {
        let mut bytes = Vec::with_capacity(xs.len() * 4);
        for x in xs {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        self.update(&bytes);
    }

    /// Absorb a `usize` as a fixed-width 8-byte big-endian integer, so the
    /// hash is identical across platforms regardless of pointer width.
    pub fn update_usize(&mut self, x: usize) {
        self.update(&(x as u64).to_be_bytes());
    }

    /// Finish, producing the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // pad: 0x80, zeros, 64-bit big-endian length
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_count(&pad[..pad_len + 8]);
        let mut out = [0u8; 32];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    /// `update` without advancing `total_len` — only for the final padding.
    fn update_no_count(&mut self, data: &[u8]) {
        let total = self.total_len;
        self.update(data);
        self.total_len = total;
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot digest of a byte slice.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// Lowercase hex rendering of a digest (or any byte string).
pub fn hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0xf) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVS vectors.
    #[test]
    fn standard_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex(&sha256(input)), want);
        }
    }

    /// One million 'a' bytes — exercises multi-block + buffered updates.
    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 997]; // deliberately not a multiple of 64
        let mut fed = 0usize;
        while fed < 1_000_000 {
            let take = chunk.len().min(1_000_000 - fed);
            h.update(&chunk[..take]);
            fed += take;
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    /// Split points never change the digest.
    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 500, 1023, 1024] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn f32_and_usize_forms_are_canonical() {
        let mut a = Sha256::new();
        a.update_f32(&[1.0, -2.5]);
        a.update_usize(7);
        let mut b = Sha256::new();
        b.update(&1.0_f32.to_le_bytes());
        b.update(&(-2.5_f32).to_le_bytes());
        b.update(&7u64.to_be_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
