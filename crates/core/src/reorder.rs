//! The accuracy-preserving layer reordering pass (paper Section III) and
//! the All-Conv baseline transformation.
//!
//! * `ReLU → MaxPool` ⇄ `MaxPool → ReLU` is *exact*: max commutes with any
//!   monotone non-decreasing function ([`relu_maxpool_commute`] verifies
//!   it numerically, `tests` prove it on random tensors).
//! * `ReLU → AvgPool` → `AvgPool → ReLU` is *approximate*: the two differ
//!   whenever a pooling window mixes signs. The paper's Section III
//!   establishes empirically that training the reordered network reaches
//!   equivalent accuracy; the reproduction's Fig.-3 experiment does the
//!   same on the synthetic datasets.
//! * All-Conv (Springenberg et al.) removes pooling entirely by giving the
//!   preceding convolution the pooling's stride — the paper's second
//!   baseline.

use mlcnn_nn::LayerSpec;
use serde::{Deserialize, Serialize};

/// How a swap changes network semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapKind {
    /// Bit-identical outputs (monotone activation over max pooling).
    Exact,
    /// Different activations, empirically equivalent accuracy (ReLU over
    /// average pooling — the MLCNN case).
    Approximate,
}

/// Report of one performed swap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Swap {
    /// Index of the activation layer in the original spec list.
    pub index: usize,
    /// Exactness class.
    pub kind: SwapKind,
}

/// Result of the reordering pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Reordered {
    /// The transformed spec list.
    pub specs: Vec<LayerSpec>,
    /// Every swap performed (recursively, indices are per containing
    /// list).
    pub swaps: Vec<Swap>,
}

/// Reorder every `ReLU → {Avg,Max}Pool` pair into `Pool → ReLU`,
/// recursing into inception branches and dense blocks. Sigmoid is *not*
/// reordered over average pooling (it is not linear over the window and
/// the paper's proof covers ReLU); it is swapped over max pooling, where
/// monotonicity makes the swap exact.
///
/// The pass runs to a fixed point: a pool behind a *chain* of activations
/// (unusual, but expressible) bubbles all the way forward, so the result
/// is idempotent.
///
/// ```
/// use mlcnn_core::reorder::{fusable_pairs, reorder_activation_pool};
/// use mlcnn_nn::zoo;
///
/// let original = zoo::lenet5_spec(10);
/// assert_eq!(fusable_pairs(&original), 0);     // ReLU blocks both pools
/// let reordered = reorder_activation_pool(&original);
/// assert_eq!(reordered.swaps.len(), 2);
/// assert_eq!(fusable_pairs(&reordered.specs), 2); // now fusable
/// ```
pub fn reorder_activation_pool(specs: &[LayerSpec]) -> Reordered {
    let mut current = specs.to_vec();
    let mut all_swaps = Vec::new();
    // each pass moves every pool at most one position left; the spec
    // length bounds the number of passes needed.
    for _ in 0..specs.len().max(1) {
        let pass = reorder_pass(&current);
        let done = pass.swaps.is_empty();
        all_swaps.extend(pass.swaps);
        current = pass.specs;
        if done {
            break;
        }
    }
    Reordered {
        specs: current,
        swaps: all_swaps,
    }
}

/// One left-to-right swap pass (helper for [`reorder_activation_pool`]).
fn reorder_pass(specs: &[LayerSpec]) -> Reordered {
    let mut out: Vec<LayerSpec> = Vec::with_capacity(specs.len());
    let mut swaps = Vec::new();
    let mut i = 0;
    while i < specs.len() {
        let cur = &specs[i];
        let next = specs.get(i + 1);
        let swap = match (cur, next) {
            (LayerSpec::ReLU, Some(LayerSpec::AvgPool { .. })) => Some(SwapKind::Approximate),
            (LayerSpec::ReLU, Some(LayerSpec::MaxPool { .. })) => Some(SwapKind::Exact),
            (LayerSpec::ReLU, Some(LayerSpec::GlobalAvgPool)) => Some(SwapKind::Approximate),
            (LayerSpec::Sigmoid, Some(LayerSpec::MaxPool { .. })) => Some(SwapKind::Exact),
            _ => None,
        };
        if let Some(kind) = swap {
            out.push(next.unwrap().clone());
            out.push(cur.clone());
            swaps.push(Swap { index: i, kind });
            i += 2;
            continue;
        }
        // recurse into composite layers
        out.push(match cur {
            LayerSpec::Inception { branches } => {
                let mut new_branches = Vec::with_capacity(branches.len());
                for b in branches {
                    let r = reorder_activation_pool(b);
                    swaps.extend(r.swaps);
                    new_branches.push(r.specs);
                }
                LayerSpec::Inception {
                    branches: new_branches,
                }
            }
            LayerSpec::DenseBlock { inner } => {
                let r = reorder_activation_pool(inner);
                swaps.extend(r.swaps);
                LayerSpec::DenseBlock { inner: r.specs }
            }
            LayerSpec::Residual { inner, projector } => {
                let ri = reorder_activation_pool(inner);
                let rp = reorder_activation_pool(projector);
                swaps.extend(ri.swaps);
                swaps.extend(rp.swaps);
                LayerSpec::Residual {
                    inner: ri.specs,
                    projector: rp.specs,
                }
            }
            other => other.clone(),
        });
        i += 1;
    }
    Reordered { specs: out, swaps }
}

/// Count the conv layers that, after reordering, are directly followed by
/// an average pool — i.e. the layers the MLCNN accelerator will fuse.
pub fn fusable_pairs(specs: &[LayerSpec]) -> usize {
    let mut count = 0;
    for i in 0..specs.len() {
        match (&specs[i], specs.get(i + 1)) {
            (LayerSpec::Conv { .. }, Some(LayerSpec::AvgPool { window, stride }))
                if window == stride =>
            {
                count += 1
            }
            (LayerSpec::Conv { .. }, Some(LayerSpec::GlobalAvgPool)) => count += 1,
            (LayerSpec::Inception { branches }, _) => {
                for b in branches {
                    count += fusable_pairs(b);
                }
            }
            (LayerSpec::DenseBlock { inner }, _) => count += fusable_pairs(inner),
            (LayerSpec::Residual { inner, projector }, _) => {
                count += fusable_pairs(inner) + fusable_pairs(projector)
            }
            _ => {}
        }
    }
    count
}

/// The All-Conv transformation: drop each pooling layer and give the
/// *preceding* convolution its stride (Springenberg et al., the paper's
/// Section II-B / Fig. 2 baseline). Pools with no preceding conv in the
/// same list are left in place.
pub fn to_all_conv(specs: &[LayerSpec]) -> Vec<LayerSpec> {
    let mut out: Vec<LayerSpec> = Vec::with_capacity(specs.len());
    for spec in specs {
        match spec {
            LayerSpec::AvgPool { stride, .. } | LayerSpec::MaxPool { stride, .. } => {
                // find the most recent conv (possibly behind an activation)
                let conv_pos = out
                    .iter()
                    .rposition(|l| matches!(l, LayerSpec::Conv { .. }));
                match conv_pos {
                    Some(pos)
                        if out[pos + 1..]
                            .iter()
                            .all(|l| matches!(l, LayerSpec::ReLU | LayerSpec::Sigmoid)) =>
                    {
                        if let LayerSpec::Conv {
                            stride: conv_stride,
                            ..
                        } = &mut out[pos]
                        {
                            *conv_stride *= stride;
                        }
                    }
                    _ => out.push(spec.clone()),
                }
            }
            LayerSpec::Inception { branches } => out.push(LayerSpec::Inception {
                branches: branches.iter().map(|b| to_all_conv(b)).collect(),
            }),
            LayerSpec::DenseBlock { inner } => out.push(LayerSpec::DenseBlock {
                inner: to_all_conv(inner),
            }),
            LayerSpec::Residual { inner, projector } => out.push(LayerSpec::Residual {
                inner: to_all_conv(inner),
                projector: to_all_conv(projector),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// The complete All-Conv transformation, for pipelines where some pools
/// cannot be absorbed into a preceding convolution (e.g. GoogLeNet's
/// pooling of an inception concatenation): absorbable pools fold into the
/// preceding conv's stride as in [`to_all_conv`]; the rest are *replaced*
/// by a stride-2 3×3 convolution + ReLU (Springenberg et al.'s second
/// variant), whose channel count is inferred by shape propagation from
/// `input`.
pub fn to_all_conv_full(
    specs: &[LayerSpec],
    input: mlcnn_tensor::Shape4,
) -> mlcnn_tensor::Result<Vec<LayerSpec>> {
    use mlcnn_nn::spec::propagate_shape;
    let mut out: Vec<LayerSpec> = Vec::with_capacity(specs.len());
    for spec in specs {
        match spec {
            LayerSpec::AvgPool { window: _, stride } | LayerSpec::MaxPool { window: _, stride } => {
                let conv_pos = out
                    .iter()
                    .rposition(|l| matches!(l, LayerSpec::Conv { .. }));
                let absorbable = matches!(conv_pos, Some(pos) if out[pos + 1..]
                    .iter()
                    .all(|l| matches!(l, LayerSpec::ReLU | LayerSpec::Sigmoid)));
                if absorbable {
                    if let Some(LayerSpec::Conv {
                        stride: conv_stride,
                        ..
                    }) = conv_pos.map(|p| &mut out[p])
                    {
                        *conv_stride *= stride;
                    }
                } else {
                    let cur = propagate_shape(&out, input)?;
                    out.push(LayerSpec::Conv {
                        out_ch: cur.c,
                        k: 3,
                        stride: *stride,
                        pad: 1,
                    });
                    out.push(LayerSpec::ReLU);
                }
            }
            LayerSpec::Inception { branches } => {
                let cur = propagate_shape(&out, input)?;
                let mut new_branches = Vec::with_capacity(branches.len());
                for b in branches {
                    new_branches.push(to_all_conv_full(b, cur)?);
                }
                out.push(LayerSpec::Inception {
                    branches: new_branches,
                });
            }
            LayerSpec::DenseBlock { inner } => {
                let cur = propagate_shape(&out, input)?;
                out.push(LayerSpec::DenseBlock {
                    inner: to_all_conv_full(inner, cur)?,
                });
            }
            LayerSpec::Residual { inner, projector } => {
                let cur = propagate_shape(&out, input)?;
                out.push(LayerSpec::Residual {
                    inner: to_all_conv_full(inner, cur)?,
                    projector: to_all_conv_full(projector, cur)?,
                });
            }
            other => out.push(other.clone()),
        }
    }
    Ok(out)
}

/// Numerical witness that ReLU and max pooling commute on a tensor.
pub fn relu_maxpool_commute(t: &mlcnn_tensor::Tensor<f32>, window: usize, stride: usize) -> bool {
    use mlcnn_tensor::activation::relu;
    use mlcnn_tensor::pool::max_pool2d;
    let a = match max_pool2d(&relu(t), window, stride) {
        Ok(v) => v.values,
        Err(_) => return false,
    };
    let b = match max_pool2d(t, window, stride) {
        Ok(v) => relu(&v.values),
        Err(_) => return false,
    };
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_nn::spec::{build_network, propagate_shape};
    use mlcnn_nn::zoo;
    use mlcnn_tensor::activation::relu;
    use mlcnn_tensor::pool::avg_pool2d;
    use mlcnn_tensor::{init, Shape4};
    #[cfg(not(miri))]
    use proptest::prelude::*;

    #[test]
    fn swaps_relu_avgpool_pairs() {
        let specs = zoo::lenet5_spec(10);
        let r = reorder_activation_pool(&specs);
        // two ReLU→AvgPool pairs in LeNet-5
        assert_eq!(r.swaps.len(), 2);
        assert!(r.swaps.iter().all(|s| s.kind == SwapKind::Approximate));
        // after reordering, pools directly follow their convs
        assert_eq!(fusable_pairs(&r.specs), 2);
        assert_eq!(fusable_pairs(&specs), 0);
    }

    #[test]
    fn reordering_preserves_shapes() {
        let input = Shape4::new(1, 3, 32, 32);
        for specs in [
            zoo::lenet5_spec(10),
            zoo::vgg_mini_spec(4, 10),
            zoo::googlenet_mini_spec(4, 10),
            zoo::densenet_mini_spec(4, 10),
        ] {
            let before = propagate_shape(&specs, input).unwrap();
            let r = reorder_activation_pool(&specs);
            let after = propagate_shape(&r.specs, input).unwrap();
            assert_eq!(before, after);
        }
    }

    #[test]
    fn reordering_preserves_parameter_count() {
        let input = Shape4::new(1, 3, 32, 32);
        let specs = zoo::vgg_mini_spec(4, 10);
        let r = reorder_activation_pool(&specs);
        let a = mlcnn_nn::spec::param_count(&specs, input).unwrap();
        let b = mlcnn_nn::spec::param_count(&r.specs, input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reordering_recurses_into_composites() {
        let specs = vec![LayerSpec::Inception {
            branches: vec![vec![
                LayerSpec::conv3(4),
                LayerSpec::ReLU,
                LayerSpec::AvgPool {
                    window: 2,
                    stride: 2,
                },
                LayerSpec::Conv {
                    out_ch: 4,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
            ]],
        }];
        let r = reorder_activation_pool(&specs);
        assert_eq!(r.swaps.len(), 1);
        if let LayerSpec::Inception { branches } = &r.specs[0] {
            assert!(matches!(branches[0][1], LayerSpec::AvgPool { .. }));
            assert!(matches!(branches[0][2], LayerSpec::ReLU));
        } else {
            panic!("inception disappeared");
        }
    }

    #[test]
    fn idempotent_on_already_reordered() {
        let specs = zoo::lenet5_spec(10);
        let once = reorder_activation_pool(&specs);
        let twice = reorder_activation_pool(&once.specs);
        assert_eq!(once.specs, twice.specs);
        assert!(twice.swaps.is_empty());
    }

    #[test]
    fn relu_maxpool_commutes_exactly() {
        let mut rng = init::rng(3);
        for _ in 0..20 {
            let t = init::uniform(Shape4::new(2, 3, 8, 8), -2.0, 2.0, &mut rng);
            assert!(relu_maxpool_commute(&t, 2, 2));
            assert!(relu_maxpool_commute(&t, 3, 1));
        }
    }

    #[test]
    fn relu_avgpool_swap_is_not_exact_but_close_on_real_activations() {
        // A window mixing signs gives different results: construct one.
        let t = mlcnn_tensor::Tensor::plane(2, 2, vec![4.0, -2.0, -2.0, -2.0]).unwrap();
        let a = avg_pool2d(&relu(&t), 2, 2).unwrap(); // relu first: avg(4,0,0,0)=1
        let b = relu(&avg_pool2d(&t, 2, 2).unwrap()); // avg=-0.5, relu=0
        assert_ne!(a.as_slice()[0], b.as_slice()[0]);
        assert_eq!(a.as_slice()[0], 1.0);
        assert_eq!(b.as_slice()[0], 0.0);
    }

    #[test]
    fn all_conv_removes_pools_and_strides_convs() {
        let specs = zoo::lenet5_spec(10);
        let ac = to_all_conv(&specs);
        assert!(!ac
            .iter()
            .any(|l| matches!(l, LayerSpec::AvgPool { .. } | LayerSpec::MaxPool { .. })));
        // first conv now has stride 2
        let strides: Vec<usize> = ac
            .iter()
            .filter_map(|l| match l {
                LayerSpec::Conv { stride, .. } => Some(*stride),
                _ => None,
            })
            .collect();
        assert_eq!(strides, vec![2, 2, 1]);
    }

    #[test]
    fn all_conv_preserves_trailing_spatial_reduction() {
        // the All-Conv net must end at the same logit count
        let input = Shape4::new(1, 3, 32, 32);
        let specs = zoo::lenet5_spec(10);
        let ac = to_all_conv(&specs);
        let out = propagate_shape(&ac, input).unwrap();
        assert_eq!(out, Shape4::new(1, 1, 1, 10));
    }

    #[test]
    fn all_conv_networks_train() {
        // the transformed spec must still build
        let input = Shape4::new(1, 3, 32, 32);
        let ac = to_all_conv(&zoo::vgg_mini_spec(2, 10));
        let net = build_network(&ac, input, 1).unwrap();
        assert!(net.param_count() > 0);
    }

    #[test]
    fn full_all_conv_replaces_unabsorbable_pools() {
        use mlcnn_tensor::Shape4;
        // a pool after an inception module cannot fold into a conv: it
        // becomes a stride-2 conv with the concatenated channel count.
        let specs = zoo::googlenet_mini_spec(4, 10);
        let input = Shape4::new(1, 3, 32, 32);
        let ac = to_all_conv_full(&specs, input).unwrap();
        assert!(!ac
            .iter()
            .any(|l| matches!(l, LayerSpec::AvgPool { .. } | LayerSpec::MaxPool { .. })));
        // spatial plan is preserved: still ends in 10 logits
        let out = propagate_shape(&ac, input).unwrap();
        assert_eq!(out, Shape4::new(1, 1, 1, 10));
        // and it actually differs from the original (new conv layers)
        assert_ne!(ac, specs);
        let net = build_network(&ac, input, 1).unwrap();
        assert!(net.param_count() > mlcnn_nn::spec::param_count(&specs, input).unwrap());
    }

    #[test]
    fn full_all_conv_matches_plain_when_absorbable() {
        use mlcnn_tensor::Shape4;
        let specs = zoo::lenet5_spec(10);
        let plain = to_all_conv(&specs);
        let full = to_all_conv_full(&specs, Shape4::new(1, 3, 32, 32)).unwrap();
        assert_eq!(plain, full);
    }

    #[test]
    fn orphan_pool_is_left_alone() {
        let specs = vec![
            LayerSpec::AvgPool {
                window: 2,
                stride: 2,
            },
            LayerSpec::Flatten,
        ];
        let ac = to_all_conv(&specs);
        assert_eq!(ac, specs);
    }

    #[cfg(not(miri))] // randomized sweeps are far too slow under the interpreter
    proptest! {
        #[test]
        fn prop_relu_maxpool_commutes(seed in 0u64..200, w in 2usize..4) {
            let t = init::uniform(Shape4::new(1, 2, 8, 8), -3.0, 3.0, &mut init::rng(seed));
            prop_assert!(relu_maxpool_commute(&t, w, w));
        }

        #[test]
        fn prop_relu_avgpool_orders_agree_on_nonnegative_inputs(seed in 0u64..200) {
            // On sign-pure windows the approximate swap is exact — the
            // regime trained ReLU networks mostly live in.
            let t = init::uniform(Shape4::new(1, 1, 8, 8), 0.0, 3.0, &mut init::rng(seed));
            let a = avg_pool2d(&relu(&t), 2, 2).unwrap();
            let b = relu(&avg_pool2d(&t, 2, 2).unwrap());
            prop_assert!(a.approx_eq(&b, 1e-6));
        }
    }
}
