//! The fused convolution–pooling operator (paper Section IV, Algorithm 1).
//!
//! After reordering, `conv → avg-pool → ReLU` is a linear pipeline up to
//! the final activation, so the pooling sum can be pushed *through* the
//! convolution: with a `p × p` (stride `p`) average pool over a stride-`S`
//! convolution,
//!
//! ```text
//! p²·P[x,y] = Σ_{i,j} W[i,j] · G[p·x·S + i][p·y·S + j]
//! G[a][b]   = Σ_{dy<p} Σ_{dx<p} I[a + dy·S][b + dx·S]
//! ```
//!
//! The kernel therefore runs Algorithm 1's three phases:
//! 1. **half addition** — vertical `p`-sums `HA[a][b] = Σ_dy I[a+dy·S][b]`;
//! 2. **full addition** — horizontal combine `G[a][b] = Σ_dx HA[a][b+dx·S]`
//!    (the LAR/GAR-shared block-sum plane);
//! 3. **MAC** — one multiplication per weight per *pooled* output (RME:
//!    `1 − 1/p²` of the dense multiplications are gone), followed by the
//!    preprocessing unit's divide-by-`p²`, bias add and ReLU.
//!
//! Functional equivalence with `relu(avg_pool(conv(x)))` is exact in
//! integer arithmetic (modulo the deferred division, see
//! [`FusedConvPool::with_divide`]) and within rounding noise at `f32`.

use mlcnn_tensor::conv::conv2d_direct;
use mlcnn_tensor::pool::{avg_pool2d, sum_pool2d};
use mlcnn_tensor::{Result, Scalar, Shape4, Tensor, TensorError};
use rayon::prelude::*;

/// Geometry of a fused conv-pool layer, all derived quantities included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedGeometry {
    /// Input spatial height/width (pre padding).
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
    /// Kernel extent.
    pub k: usize,
    /// Convolution stride.
    pub conv_stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Pool window == pool stride.
    pub pool: usize,
    /// Conv output height.
    pub conv_h: usize,
    /// Conv output width.
    pub conv_w: usize,
    /// Pooled output height.
    pub out_h: usize,
    /// Pooled output width.
    pub out_w: usize,
}

impl FusedGeometry {
    /// Derive and validate the geometry.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k: usize,
        conv_stride: usize,
        pad: usize,
        pool: usize,
    ) -> Result<Self> {
        if conv_stride == 0 || pool == 0 || k == 0 {
            return Err(TensorError::BadGeometry {
                reason: "fused geometry requires nonzero kernel/stride/pool".into(),
            });
        }
        let padded_h = in_h + 2 * pad;
        let padded_w = in_w + 2 * pad;
        if k > padded_h || k > padded_w {
            return Err(TensorError::BadGeometry {
                reason: format!("kernel {k} exceeds padded input {padded_h}x{padded_w}"),
            });
        }
        let conv_h = (padded_h - k) / conv_stride + 1;
        let conv_w = (padded_w - k) / conv_stride + 1;
        if pool > conv_h || pool > conv_w {
            return Err(TensorError::BadGeometry {
                reason: format!("pool {pool} exceeds conv output {conv_h}x{conv_w}"),
            });
        }
        Ok(Self {
            in_h,
            in_w,
            k,
            conv_stride,
            pad,
            pool,
            conv_h,
            conv_w,
            out_h: (conv_h - pool) / pool + 1,
            out_w: (conv_w - pool) / pool + 1,
        })
    }
}

/// Reusable scratch buffers for the fused kernel: the zero-padded input
/// plane, the half-addition plane and the per-channel block-sum (`G`)
/// planes. Create once (or via `Workspace::for_plan`), reuse across calls —
/// [`FusedConvPool::forward_item_into`] only grows the buffers when a
/// larger geometry arrives, so steady-state execution is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FusedScratch<T> {
    padded: Vec<T>,
    ha: Vec<T>,
    g: Vec<T>,
}

impl<T: Scalar> FusedScratch<T> {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            padded: Vec::new(),
            ha: Vec::new(),
            g: Vec::new(),
        }
    }

    /// Grow the buffers to cover `geom` with `channels` input channels.
    /// Never shrinks, so one scratch serves every fused layer of a network.
    pub fn ensure(&mut self, geom: &FusedGeometry, channels: usize) {
        let (ph, pw) = (geom.in_h + 2 * geom.pad, geom.in_w + 2 * geom.pad);
        let span = (geom.pool - 1) * geom.conv_stride;
        let g_len = channels * (ph - span) * (pw - span);
        if self.padded.len() < ph * pw {
            self.padded.resize(ph * pw, T::zero());
        }
        // both LAR orientations need at most a padded-plane's worth of HA
        if self.ha.len() < ph * pw {
            self.ha.resize(ph * pw, T::zero());
        }
        if self.g.len() < g_len {
            self.g.resize(g_len, T::zero());
        }
    }
}

/// The fused operator: weights + bias + geometry knobs.
#[derive(Debug, Clone)]
pub struct FusedConvPool<T = f32> {
    weight: Tensor<T>,
    bias: Vec<T>,
    conv_stride: usize,
    pad: usize,
    pool: usize,
    relu: bool,
    divide: bool,
    row_based: bool,
}

impl<T: Scalar> FusedConvPool<T> {
    /// Create a fused layer. `weight` is `M×N×K×K` (square kernels),
    /// `bias` one entry per output channel, `pool` the non-overlapping
    /// average-pool window that follows the convolution.
    pub fn new(
        weight: Tensor<T>,
        bias: Vec<T>,
        conv_stride: usize,
        pad: usize,
        pool: usize,
    ) -> Result<Self> {
        let w = weight.shape();
        if w.h != w.w {
            return Err(TensorError::BadGeometry {
                reason: format!("square kernels only, got {}x{}", w.h, w.w),
            });
        }
        if bias.len() != w.n {
            return Err(TensorError::BadGeometry {
                reason: format!("bias length {} != out channels {}", bias.len(), w.n),
            });
        }
        Ok(Self {
            weight,
            bias,
            conv_stride,
            pad,
            pool,
            relu: true,
            divide: true,
            row_based: false,
        })
    }

    /// Toggle the trailing ReLU (on by default).
    pub fn with_relu(mut self, relu: bool) -> Self {
        self.relu = relu;
        self
    }

    /// Toggle the divide-by-`p²` (on by default). Disable for exact
    /// integer-arithmetic equivalence against sum-pooling.
    pub fn with_divide(mut self, divide: bool) -> Self {
        self.divide = divide;
        self
    }

    /// Select row-based LAR (half additions over rows first, then the
    /// vertical combine) instead of the default column-based order. The
    /// paper notes "row-based LAR works in a similar way"; the two
    /// orientations produce identical block sums — property-tested
    /// bit-exactly in integer arithmetic — and differ only in which
    /// operand stream the AR unit's registers hold.
    pub fn with_row_based_lar(mut self, row_based: bool) -> Self {
        self.row_based = row_based;
        self
    }

    /// Pool window accessor.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Baked weight tensor (`M×N×K×K`).
    pub fn weight(&self) -> &Tensor<T> {
        &self.weight
    }

    /// Baked bias, one entry per output channel.
    pub fn bias(&self) -> &[T] {
        &self.bias
    }

    /// Whether the fused group ends in ReLU.
    pub fn relu(&self) -> bool {
        self.relu
    }

    /// Convolution stride.
    pub fn conv_stride(&self) -> usize {
        self.conv_stride
    }

    /// Zero padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Derived geometry for an input shape.
    pub fn geometry(&self, input: Shape4) -> Result<FusedGeometry> {
        FusedGeometry::new(
            input.h,
            input.w,
            self.weight.shape().h,
            self.conv_stride,
            self.pad,
            self.pool,
        )
    }

    /// Output shape for an input shape.
    pub fn out_shape(&self, input: Shape4) -> Result<Shape4> {
        let g = self.geometry(input)?;
        Ok(Shape4::new(
            input.n,
            self.weight.shape().n,
            g.out_h,
            g.out_w,
        ))
    }

    /// Build the block-sum plane `G` for one padded input plane.
    ///
    /// Returns a `(g_h × g_w)` row-major buffer where
    /// `G[a][b] = Σ_{dy,dx<p} padded[a+dy·S][b+dx·S]`, computed through the
    /// half-addition plane exactly as the AR unit does — column-based
    /// (vertical HA, horizontal combine) by default, or the row-based
    /// orientation when selected.
    fn block_sum_plane_into(
        &self,
        padded: &[T],
        ph: usize,
        pw: usize,
        ha: &mut [T],
        g: &mut [T],
    ) -> usize {
        let p = self.pool;
        let s = self.conv_stride;
        let span = (p - 1) * s;
        let g_h = ph - span;
        let gw_valid = pw - span;
        debug_assert!(g.len() >= g_h * gw_valid);
        if self.row_based {
            // phase 1: half additions over rows (horizontal p-sums)
            debug_assert!(ha.len() >= ph * gw_valid);
            for a in 0..ph {
                for b in 0..gw_valid {
                    let mut acc = padded[a * pw + b];
                    for dx in 1..p {
                        acc += padded[a * pw + b + dx * s];
                    }
                    ha[a * gw_valid + b] = acc;
                }
            }
            // phase 2: vertical combine
            for a in 0..g_h {
                for b in 0..gw_valid {
                    let mut acc = ha[a * gw_valid + b];
                    for dy in 1..p {
                        acc += ha[(a + dy * s) * gw_valid + b];
                    }
                    g[a * gw_valid + b] = acc;
                }
            }
            return gw_valid;
        }
        let g_w = pw; // HA spans full width; G valid width is pw - span
        debug_assert!(ha.len() >= g_h * g_w);
        // phase 1: half additions (vertical p-sums at spacing S)
        for a in 0..g_h {
            for b in 0..pw {
                let mut acc = padded[a * pw + b];
                for dy in 1..p {
                    acc += padded[(a + dy * s) * pw + b];
                }
                ha[a * g_w + b] = acc;
            }
        }
        // phase 2: full additions (horizontal combine at spacing S)
        for a in 0..g_h {
            for b in 0..gw_valid {
                let mut acc = ha[a * g_w + b];
                for dx in 1..p {
                    acc += ha[a * g_w + b + dx * s];
                }
                g[a * gw_valid + b] = acc;
            }
        }
        gw_valid
    }

    /// Run the fused operator on one batch item laid out as a raw
    /// `c × in_h × in_w` slice, writing the `out_ch × out_h × out_w` result
    /// into `dst`. All temporaries come from `scratch`, which is grown on
    /// first use and reused thereafter — the execution plan's zero-
    /// allocation steady state. Arithmetic is identical to [`Self::forward`]
    /// (which delegates here per item), so the two are bitwise equal.
    pub fn forward_item_into(
        &self,
        item: &[T],
        geom: &FusedGeometry,
        dst: &mut [T],
        scratch: &mut FusedScratch<T>,
    ) {
        let wshape = self.weight.shape();
        let channels = wshape.c;
        let (p, s, k) = (self.pool, self.conv_stride, geom.k);
        let (ph, pw) = (geom.in_h + 2 * geom.pad, geom.in_w + 2 * geom.pad);
        assert_eq!(item.len(), channels * geom.in_h * geom.in_w);
        assert_eq!(dst.len(), wshape.n * geom.out_h * geom.out_w);
        scratch.ensure(geom, channels);
        let inv_area = T::one() / T::from_f32((p * p) as f32);
        let span = (p - 1) * s;
        let g_plane_len = (ph - span) * (pw - span);
        // phase 1+2 per input channel: block-sum planes
        let mut gw = 0;
        for c in 0..channels {
            let plane = &item[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
            let padded = &mut scratch.padded[..ph * pw];
            padded.fill(T::zero());
            for h in 0..geom.in_h {
                let dst_row = &mut padded
                    [(h + geom.pad) * pw + geom.pad..(h + geom.pad) * pw + geom.pad + geom.in_w];
                dst_row.copy_from_slice(&plane[h * geom.in_w..(h + 1) * geom.in_w]);
            }
            gw = self.block_sum_plane_into(
                &scratch.padded[..ph * pw],
                ph,
                pw,
                &mut scratch.ha,
                &mut scratch.g[c * g_plane_len..(c + 1) * g_plane_len],
            );
        }
        // phase 3: MAC over the factored weights
        for to in 0..wshape.n {
            for x in 0..geom.out_h {
                for y in 0..geom.out_w {
                    let mut acc = T::zero();
                    for ti in 0..channels {
                        let gp = &scratch.g[ti * g_plane_len..(ti + 1) * g_plane_len];
                        for i in 0..k {
                            let row = (p * x * s + i) * gw + p * y * s;
                            for j in 0..k {
                                acc += self.weight.at(to, ti, i, j) * gp[row + j];
                            }
                        }
                    }
                    // preprocessing: /p², bias, activation
                    let mut v = if self.divide { acc * inv_area } else { acc };
                    v += self.bias[to];
                    if self.relu {
                        v = v.relu();
                    }
                    dst[(to * geom.out_h + x) * geom.out_w + y] = v;
                }
            }
        }
    }

    /// Run the fused operator. Batch items write their disjoint chunks of
    /// the output tensor in place (no per-item buffers to re-copy), in
    /// parallel; each worker carries its own [`FusedScratch`].
    pub fn forward(&self, input: &Tensor<T>) -> Result<Tensor<T>> {
        let ishape = input.shape();
        let wshape = self.weight.shape();
        if ishape.c != wshape.c {
            return Err(TensorError::ShapeMismatch {
                left: ishape,
                right: wshape,
                op: "fused conv-pool (channels)",
            });
        }
        let geom = self.geometry(ishape)?;
        let out_shape = Shape4::new(ishape.n, wshape.n, geom.out_h, geom.out_w);
        let in_item = ishape.c * ishape.h * ishape.w;
        let out_item = wshape.n * geom.out_h * geom.out_w;
        let data = input.as_slice();
        let mut out = Tensor::zeros(out_shape);
        out.as_mut_slice()
            .par_chunks_mut(out_item.max(1))
            .enumerate()
            .for_each(|(n, dst)| {
                let mut scratch = FusedScratch::new();
                let item = &data[n * in_item..(n + 1) * in_item];
                self.forward_item_into(item, &geom, dst, &mut scratch);
            });
        Ok(out)
    }

    /// The unfused reference: `relu?(pool(conv(x) + bias))` with average
    /// (or, when division is disabled, sum) pooling. This is what MLCNN
    /// must match.
    pub fn reference(&self, input: &Tensor<T>) -> Result<Tensor<T>> {
        let conv = conv2d_direct(input, &self.weight, None, self.conv_stride, self.pad)?;
        let mut pooled = if self.divide {
            avg_pool2d(&conv, self.pool, self.pool)?
        } else {
            sum_pool2d(&conv, self.pool, self.pool)?
        };
        // bias after pooling == bias before pooling for average pooling;
        // for the sum variant the caller's bias is in the sum domain.
        let s = pooled.shape();
        for n in 0..s.n {
            for c in 0..s.c {
                let b = self.bias[c];
                for v in pooled.plane_slice_mut(n, c) {
                    *v += b;
                }
            }
        }
        if self.relu {
            pooled.map_inplace(|v| v.relu());
        }
        Ok(pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::init;
    #[cfg(not(miri))]
    use proptest::prelude::*;

    fn rand_setup(
        seed: u64,
        b: usize,
        cin: usize,
        cout: usize,
        d: usize,
        k: usize,
        s: usize,
        pad: usize,
        pool: usize,
    ) -> (Tensor<f32>, FusedConvPool<f32>) {
        let mut rng = init::rng(seed);
        let input = init::uniform(Shape4::new(b, cin, d, d), -1.0, 1.0, &mut rng);
        let weight = init::uniform(Shape4::new(cout, cin, k, k), -1.0, 1.0, &mut rng);
        let bias: Vec<f32> = (0..cout).map(|i| (i as f32 - 1.0) * 0.05).collect();
        let fused = FusedConvPool::new(weight, bias, s, pad, pool).unwrap();
        (input, fused)
    }

    #[test]
    fn matches_reference_on_paper_example_geometry() {
        // Fig. 5: 5x5 input, 2x2 filter, unit stride, 2x2 pool.
        let (input, fused) = rand_setup(1, 1, 1, 1, 5, 2, 1, 0, 2);
        let a = fused.forward(&input).unwrap();
        let b = fused.reference(&input).unwrap();
        assert_eq!(a.shape(), Shape4::new(1, 1, 2, 2));
        assert!(
            a.approx_eq(&b, 1e-5),
            "diff {}",
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn matches_reference_across_geometries() {
        for (seed, b, cin, cout, d, k, s, pad, pool) in [
            (
                2u64, 2usize, 3usize, 4usize, 8usize, 3usize, 1usize, 1usize, 2usize,
            ),
            (3, 1, 2, 2, 12, 5, 1, 0, 2),
            (4, 1, 1, 3, 16, 3, 1, 1, 4),
            (5, 2, 2, 2, 9, 2, 1, 0, 3),
            (6, 1, 4, 1, 16, 5, 2, 2, 2),
            (7, 1, 1, 1, 16, 1, 1, 0, 2), // 1x1 kernel (DenseNet transition)
            (8, 1, 2, 2, 10, 3, 1, 1, 5),
        ] {
            let (input, fused) = rand_setup(seed, b, cin, cout, d, k, s, pad, pool);
            let a = fused.forward(&input).unwrap();
            let r = fused.reference(&input).unwrap();
            assert!(
                a.approx_eq(&r, 1e-4),
                "geometry d={d} k={k} s={s} pad={pad} pool={pool}: diff {}",
                a.max_abs_diff(&r).unwrap()
            );
        }
    }

    #[test]
    fn googlenet_style_8x8_global_pool() {
        // conv output 8x8 pooled by 8 → a single output per channel.
        let (input, fused) = rand_setup(9, 1, 3, 2, 8, 3, 1, 1, 8);
        let a = fused.forward(&input).unwrap();
        let r = fused.reference(&input).unwrap();
        assert_eq!(a.shape(), Shape4::new(1, 2, 1, 1));
        assert!(a.approx_eq(&r, 1e-4));
    }

    #[test]
    fn integer_arithmetic_is_bit_exact() {
        // deferred division => fused == sum-pooled reference exactly in i64.
        let mut rng = init::rng(10);
        let input = init::uniform(Shape4::new(1, 2, 9, 9), -8.0, 8.0, &mut rng).cast::<i64>();
        let weight = init::uniform(Shape4::new(3, 2, 3, 3), -4.0, 4.0, &mut rng).cast::<i64>();
        let fused = FusedConvPool::new(weight, vec![1_i64, -2, 3], 1, 0, 2)
            .unwrap()
            .with_divide(false);
        let a = fused.forward(&input).unwrap();
        let r = fused.reference(&input).unwrap();
        assert_eq!(a, r, "integer fused != reference");
    }

    #[test]
    fn relu_clamps_negative_pooled_outputs() {
        let weight = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![-1.0_f32]).unwrap();
        let fused = FusedConvPool::new(weight, vec![0.0], 1, 0, 2).unwrap();
        let input = Tensor::full(Shape4::hw(4, 4), 1.0_f32);
        let out = fused.forward(&input).unwrap();
        // conv output = -1 everywhere, pooled = -1, relu = 0
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        let no_relu = fused.clone().with_relu(false).forward(&input).unwrap();
        assert!(no_relu.as_slice().iter().all(|&v| v == -1.0));
    }

    #[test]
    fn bias_is_applied_once_after_pooling() {
        let weight = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![0.0_f32]).unwrap();
        let fused = FusedConvPool::new(weight, vec![7.5], 1, 0, 2).unwrap();
        let input = Tensor::full(Shape4::hw(4, 4), 3.0_f32);
        let out = fused.forward(&input).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn forward_item_into_reuses_dirty_scratch_across_geometries() {
        // one scratch serving layers of different geometry must not leak
        // state (stale padding ring, oversized G planes) between calls.
        let (input_a, fused_a) = rand_setup(11, 1, 3, 2, 10, 3, 1, 1, 2);
        let (input_b, fused_b) = rand_setup(12, 1, 2, 3, 8, 2, 1, 0, 2);
        let mut scratch = FusedScratch::new();
        for (inp, f) in [
            (&input_a, &fused_a),
            (&input_b, &fused_b),
            (&input_a, &fused_a),
        ] {
            let geom = f.geometry(inp.shape()).unwrap();
            let expect = f.forward(inp).unwrap();
            let mut dst = vec![0.0_f32; expect.shape().len()];
            f.forward_item_into(inp.as_slice(), &geom, &mut dst, &mut scratch);
            assert_eq!(dst.as_slice(), expect.as_slice());
        }
    }

    #[test]
    fn rejects_bad_construction() {
        let w = Tensor::<f32>::zeros(Shape4::new(2, 1, 2, 3));
        assert!(FusedConvPool::new(w, vec![0.0; 2], 1, 0, 2).is_err());
        let w = Tensor::<f32>::zeros(Shape4::new(2, 1, 3, 3));
        assert!(FusedConvPool::new(w.clone(), vec![0.0; 1], 1, 0, 2).is_err());
        let ok = FusedConvPool::new(w, vec![0.0; 2], 1, 0, 2).unwrap();
        // pool larger than conv output (3x3 input, 3x3 kernel → 1x1 conv)
        assert!(ok.out_shape(Shape4::new(1, 1, 3, 3)).is_err());
        // channel mismatch
        let input = Tensor::<f32>::zeros(Shape4::new(1, 3, 8, 8));
        assert!(ok.forward(&input).is_err());
    }

    #[test]
    fn geometry_derivation() {
        let g = FusedGeometry::new(32, 32, 3, 1, 1, 2).unwrap();
        assert_eq!((g.conv_h, g.conv_w), (32, 32));
        assert_eq!((g.out_h, g.out_w), (16, 16));
        let g = FusedGeometry::new(14, 14, 5, 1, 0, 2).unwrap();
        assert_eq!((g.conv_h, g.conv_w), (10, 10));
        assert_eq!((g.out_h, g.out_w), (5, 5));
        assert!(FusedGeometry::new(4, 4, 3, 1, 0, 3).is_err());
    }

    #[test]
    fn multiplication_count_is_reduced_by_pool_area() {
        // structural check: the fused MAC loop touches K² weights per
        // pooled output; dense touches K² per conv output. Verify via the
        // geometry: conv outputs / pooled outputs == p².
        let g = FusedGeometry::new(32, 32, 3, 1, 1, 2).unwrap();
        assert_eq!(g.conv_h * g.conv_w, 4 * g.out_h * g.out_w);
        let g = FusedGeometry::new(8, 8, 3, 1, 1, 8).unwrap();
        assert_eq!(g.conv_h * g.conv_w, 64 * g.out_h * g.out_w);
    }

    #[test]
    fn row_based_orientation_is_bit_exact_in_integers() {
        let mut rng = init::rng(41);
        let input = init::uniform(Shape4::new(1, 2, 10, 10), -8.0, 8.0, &mut rng).cast::<i64>();
        let weight = init::uniform(Shape4::new(2, 2, 3, 3), -4.0, 4.0, &mut rng).cast::<i64>();
        let col = FusedConvPool::new(weight.clone(), vec![0_i64, 0], 1, 1, 2)
            .unwrap()
            .with_divide(false);
        let row = col.clone().with_row_based_lar(true);
        assert_eq!(col.forward(&input).unwrap(), row.forward(&input).unwrap());
    }

    #[test]
    fn row_based_orientation_matches_reference_at_f32() {
        let (input, fused) = rand_setup(42, 1, 3, 2, 12, 5, 1, 2, 2);
        let fused = fused.with_row_based_lar(true);
        let a = fused.forward(&input).unwrap();
        let r = fused.reference(&input).unwrap();
        assert!(
            a.approx_eq(&r, 1e-4),
            "diff {}",
            a.max_abs_diff(&r).unwrap()
        );
    }

    #[cfg(not(miri))] // randomized sweeps are far too slow under the interpreter
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_fused_equals_reference(
            seed in 0u64..1000,
            cin in 1usize..4,
            cout in 1usize..4,
            k in 1usize..6,
            pad in 0usize..3,
            pool in 2usize..4,
            extra in 0usize..6,
        ) {
            // build a d large enough for at least one pooled output
            let d = (k + pool * pool + extra).max(pool + k);
            let (input, fused) = rand_setup(seed, 1, cin, cout, d, k, 1, pad, pool);
            let a = fused.forward(&input).unwrap();
            let r = fused.reference(&input).unwrap();
            prop_assert!(
                a.approx_eq(&r, 1e-3),
                "d={} k={} pad={} pool={} diff={}",
                d, k, pad, pool,
                a.max_abs_diff(&r).unwrap()
            );
        }

        #[test]
        fn prop_orientations_agree(
            seed in 0u64..500,
            k in 1usize..5,
            pool in 2usize..4,
            extra in 0usize..5,
        ) {
            let d = k + pool * 2 + extra;
            let mut rng = init::rng(seed);
            let input = init::uniform(Shape4::new(1, 2, d, d), -5.0, 5.0, &mut rng).cast::<i64>();
            let weight = init::uniform(Shape4::new(2, 2, k, k), -3.0, 3.0, &mut rng).cast::<i64>();
            let col = FusedConvPool::new(weight, vec![0, 0], 1, 0, pool)
                .unwrap()
                .with_divide(false);
            let row = col.clone().with_row_based_lar(true);
            prop_assert_eq!(col.forward(&input).unwrap(), row.forward(&input).unwrap());
        }

        #[test]
        fn prop_integer_exactness(
            seed in 0u64..500,
            k in 1usize..5,
            pool in 2usize..4,
            extra in 0usize..5,
        ) {
            let d = k + pool * 2 + extra;
            let mut rng = init::rng(seed);
            let input = init::uniform(Shape4::new(1, 2, d, d), -5.0, 5.0, &mut rng).cast::<i64>();
            let weight = init::uniform(Shape4::new(2, 2, k, k), -3.0, 3.0, &mut rng).cast::<i64>();
            let fused = FusedConvPool::new(weight, vec![0, 0], 1, 0, pool)
                .unwrap()
                .with_divide(false);
            let a = fused.forward(&input).unwrap();
            let r = fused.reference(&input).unwrap();
            prop_assert_eq!(a, r);
        }
    }
}
